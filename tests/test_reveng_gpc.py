"""Tests for GPC membership reverse engineering (Section 3.3 / Fig 3-4)."""

import pytest

from repro.config import medium_config
from repro.reveng.gpc_discovery import (
    recover_gpc_groups,
    sweep_gpc_membership,
    verify_topology,
)


@pytest.fixture(scope="module")
def cfg():
    # Medium config, noise-free: GPC0 has 5 TPCs, enough read traffic to
    # expose the GPC reply-channel oversubscription the experiment uses.
    return medium_config(timing_noise=0)


@pytest.fixture(scope="module")
def sweep(cfg):
    return sweep_gpc_membership(
        cfg, anchor_tpc=0, trials=8, extra_tpcs=4, ops=3, seed=1
    )


class TestSweep:
    def test_every_varied_tpc_sampled(self, cfg, sweep):
        assert set(sweep.samples) == set(range(1, cfg.num_tpcs))
        assert all(len(times) == 8 for times in sweep.samples.values())

    def test_trials_record_active_sets(self, cfg, sweep):
        assert len(sweep.trials) == 8 * (cfg.num_tpcs - 1)
        for active, time in sweep.trials:
            assert 0 not in active  # the anchor is not its own co-runner
            assert len(active) == 5  # varied + 4 extras
            assert time > 0

    def test_same_gpc_tpcs_score_higher(self, cfg, sweep):
        members = cfg.gpc_members()
        anchor_gpc = cfg.tpc_to_gpc_map()[0]
        same = [t for t in members[anchor_gpc] if t != 0]
        scores = sweep.membership_scores()
        different = [t for t in scores if t not in same]
        assert min(scores[t] for t in same) > max(
            scores[t] for t in different
        )

    def test_co_resident_detection_matches_ground_truth(self, cfg, sweep):
        members = cfg.gpc_members()
        anchor_gpc = cfg.tpc_to_gpc_map()[0]
        expected = sorted(t for t in members[anchor_gpc] if t != 0)
        assert sweep.co_resident_tpcs() == expected

    def test_contended_fraction_diagnostic(self, sweep):
        fractions = sweep.contended_fractions(slowdown_cut=1.10)
        assert all(0.0 <= f <= 1.0 for f in fractions.values())


class TestRecovery:
    def test_full_gpc_grouping_recovered(self, cfg):
        groups = recover_gpc_groups(cfg, trials=8, ops=3, seed=5)
        assert verify_topology(cfg, groups)

    def test_verify_topology_rejects_wrong_grouping(self, cfg):
        wrong = [set(range(cfg.num_tpcs))]
        assert not verify_topology(cfg, wrong)

    def test_recovery_deterministic_for_seed(self, cfg):
        first = recover_gpc_groups(cfg, trials=6, ops=3, seed=9)
        second = recover_gpc_groups(cfg, trials=6, ops=3, seed=9)
        assert first == second

"""Cross-module integration tests: the full attack pipeline end-to-end."""

import random

import pytest

from repro.config import small_config
from repro.channel.tpc_channel import TpcCovertChannel
from repro.channel.protocol import ChannelParams
from repro.reveng.colocation import plan_tpc_colocation
from repro.reveng.tpc_discovery import recover_tpc_pairs


class TestAttackPipeline:
    """The complete attack as the paper stages it: reverse-engineer the
    topology, verify co-location, then exfiltrate data."""

    def test_reveng_then_transmit(self):
        cfg = small_config()
        # Step 1: recover TPC pairs (Section 3.2).
        pairs = recover_tpc_pairs(cfg, ops=8)
        assert len(pairs) == cfg.num_tpcs
        # Step 2: co-locate via the thread-block scheduler (Section 4.3).
        plan = plan_tpc_colocation(cfg)
        assert plan.num_channels == cfg.num_tpcs
        # Step 3: exfiltrate a secret (Section 4.4).
        channel = TpcCovertChannel(cfg)
        channel.calibrate()
        secret = b"\xde\xad"
        result = channel.transmit_bytes(secret)
        assert result.error_rate <= 0.07

    def test_exfiltrate_ascii_message(self):
        cfg = small_config()
        channel = TpcCovertChannel.all_channels(cfg)
        channel.calibrate()
        message = b"hi"
        result = channel.transmit_bytes(message)
        # Reassemble the received bits into bytes.
        received = 0
        for bit in result.received_symbols:
            received = (received << 1) | bit
        recovered = received.to_bytes(len(message), "big")
        errors = sum(
            bin(a ^ b).count("1") for a, b in zip(message, recovered)
        )
        assert errors <= 1

    def test_noise_free_machine_is_error_free(self):
        cfg = small_config(timing_noise=0)
        channel = TpcCovertChannel(cfg)
        channel.calibrate()
        rng = random.Random(3)
        bits = [rng.randint(0, 1) for _ in range(64)]
        result = channel.transmit(bits)
        assert result.error_rate == 0.0

    def test_noise_floor_raises_low_iteration_error(self):
        """Figure 10's mechanism: iterations average out machine noise."""
        noisy = small_config(timing_noise=160)
        rng = random.Random(5)
        bits = [rng.randint(0, 1) for _ in range(64)]
        errors = {}
        for iterations in (1, 5):
            channel = TpcCovertChannel(
                noisy, params=ChannelParams(iterations=iterations)
            )
            channel.calibrate(training_symbols=24)
            errors[iterations] = channel.transmit(bits).error_rate
        assert errors[1] > errors[5]

    def test_channel_subset_selection(self):
        cfg = small_config()
        channel = TpcCovertChannel(cfg, channels=[1, 3])
        channel.calibrate()
        rng = random.Random(9)
        bits = [rng.randint(0, 1) for _ in range(24)]
        result = channel.transmit(bits)
        assert channel.num_channels == 2
        assert result.error_rate <= 0.1


class TestThirdKernelNoise:
    """Section 5 'Impact of Noise': an L2-thrashing third kernel pushes
    the channel's working set to DRAM and destroys it."""

    def _channel_error(self, config) -> float:
        channel = TpcCovertChannel(config, channels=[0])
        channel.calibrate()
        rng = random.Random(11)
        bits = [rng.randint(0, 1) for _ in range(32)]
        return channel.transmit(bits).error_rate

    def test_l2_capacity_pressure_degrades_channel(self):
        """When the channel's lines cannot stay L2-resident (the effect a
        thrashing third kernel induces), probes detour to DRAM and the
        noise floor swamps the contention signal."""
        clean = self._channel_error(small_config())
        starved = self._channel_error(
            small_config(l2_slice_bytes=2048, num_l2_slices=8, l2_ways=2)
        )
        assert clean <= 0.05
        assert starved > clean

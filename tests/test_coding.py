"""Tests for the forward-error-correction layer."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.config import small_config
from repro.channel.coding import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
    transmit_coded,
)
from repro.channel.protocol import ChannelParams
from repro.channel.tpc_channel import TpcCovertChannel


class TestRepetition:
    def test_encode_repeats(self):
        assert repetition_encode([1, 0], 3) == [1, 1, 1, 0, 0, 0]

    def test_decode_majority(self):
        assert repetition_decode([1, 0, 1, 0, 0, 0], 3) == [1, 0]

    def test_corrects_single_flip_per_group(self):
        coded = repetition_encode([1, 0, 1], 3)
        coded[0] ^= 1
        coded[4] ^= 1
        assert repetition_decode(coded, 3) == [1, 0, 1]

    def test_even_factor_rejected(self):
        with pytest.raises(ValueError):
            repetition_encode([1], 2)
        with pytest.raises(ValueError):
            repetition_decode([1, 1], 2)

    @given(
        st.lists(st.integers(0, 1), max_size=32),
        st.sampled_from([1, 3, 5]),
    )
    def test_round_trip_clean(self, bits, n):
        assert repetition_decode(repetition_encode(bits, n), n) == bits


class TestHamming74:
    def test_codeword_length(self):
        assert len(hamming74_encode([1, 0, 1, 1])) == 7
        assert len(hamming74_encode([1] * 8)) == 14

    def test_clean_round_trip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert hamming74_decode(hamming74_encode(bits)) == bits

    def test_corrects_any_single_bit_error(self):
        bits = [1, 0, 1, 1]
        coded = hamming74_encode(bits)
        for position in range(7):
            corrupted = list(coded)
            corrupted[position] ^= 1
            assert hamming74_decode(corrupted) == bits, position

    def test_pads_to_multiple_of_four(self):
        bits = [1, 0, 1]
        decoded = hamming74_decode(hamming74_encode(bits))
        assert decoded[:3] == bits

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=40))
    def test_round_trip_property(self, bits):
        decoded = hamming74_decode(hamming74_encode(bits))
        assert decoded[: len(bits)] == bits

    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=4),
        st.integers(0, 6),
    )
    def test_single_error_always_corrected(self, data, flip):
        coded = hamming74_encode(data)
        coded[flip] ^= 1
        assert hamming74_decode(coded) == data


class TestCodedTransmission:
    @pytest.fixture(scope="class")
    def noisy_channel(self):
        # Iterations=1 on a noisy machine: meaningfully error-prone raw.
        config = small_config(timing_noise=160)
        channel = TpcCovertChannel(
            config, params=ChannelParams(iterations=1)
        )
        channel.calibrate(training_symbols=24)
        return channel

    def test_coding_reduces_error_rate(self, noisy_channel):
        rng = random.Random(3)
        payload = [rng.randint(0, 1) for _ in range(40)]
        uncoded = transmit_coded(noisy_channel, payload, scheme="none")
        repetition = transmit_coded(
            noisy_channel, payload, scheme="repetition", repetition=3
        )
        assert repetition.decoded_error_rate <= uncoded.decoded_error_rate
        assert repetition.code_rate == pytest.approx(1 / 3)

    def test_hamming_effective_bandwidth_accounts_rate(self, noisy_channel):
        rng = random.Random(5)
        payload = [rng.randint(0, 1) for _ in range(24)]
        coded = transmit_coded(noisy_channel, payload, scheme="hamming74")
        assert coded.code_rate == pytest.approx(4 / 7)
        assert coded.effective_bandwidth_mbps == pytest.approx(
            coded.raw.bandwidth_mbps * 4 / 7
        )
        assert len(coded.decoded_bits) == len(payload)

    def test_unknown_scheme_rejected(self, noisy_channel):
        with pytest.raises(ValueError):
            transmit_coded(noisy_channel, [1, 0], scheme="turbo")

"""Multi-GPU fabric tests: topology, link timing, determinism, lockstep.

The determinism tests mirror the single-device oracle suite
(``test_validate_oracle.py``) at system scope: a 2-device ring must be
bit-identical after ``reset()`` and digest-identical across all engine
strategies under a bidirectional remote-traffic stimulus.
"""

import pytest

from repro.config import LinkConfig, small_config
from repro.channel.link_channel import LinkCovertChannel
from repro.gpu.coalescer import lane_addresses_uncoalesced
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, READ, WRITE
from repro.interconnect import (
    FabricTopology,
    MultiGpuSystem,
    build_topology,
)
from repro.validate import verify_equivalence


def quiet_cfg(**overrides):
    return small_config(timing_noise=0, **overrides)


def remote_program(context):
    """Stream ``ops`` accesses at ``device``'s L2 over the fabric."""
    args = context.args
    line = 64
    base = args["base"] + context.warp_id * args["ops"] * 32 * line
    latencies = args.get("latencies")
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + op * 32 * line, line, 32
        )
        latency = yield MemOp(
            args["kind"], addresses,
            wait_for_completion=args.get("wait"),
            device=args["device"],
        )
        if latencies is not None:
            latencies.append(latency)


def remote_kernel(kind, device, ops=4, base=0, warps=1, wait=None,
                  latencies=None):
    return Kernel(
        remote_program,
        num_blocks=1,
        warps_per_block=warps,
        args={
            "kind": kind, "ops": ops, "base": base,
            "device": device, "wait": wait, "latencies": latencies,
        },
        name=f"remote-{kind}",
    )


class TestTopology:
    def test_ring_two_devices(self):
        topo = build_topology(LinkConfig(num_devices=2, topology="ring"))
        assert topo.num_devices == 2
        assert topo.num_nodes == 2
        assert topo.next_hop[0][1] == 1
        assert topo.next_hop[1][0] == 0
        assert topo.next_hop[0][0] == -1  # local: no hop

    def test_ring_shortest_direction(self):
        topo = build_topology(LinkConfig(num_devices=4, topology="ring"))
        # 0 -> 1 goes clockwise, 0 -> 3 counter-clockwise.
        assert topo.next_hop[0][1] == 1
        assert topo.next_hop[0][3] == 3
        # Opposite corner: either direction is 2 hops; the tie breaks
        # clockwise so routing stays deterministic.
        assert topo.next_hop[0][2] == 1

    def test_full_is_single_hop(self):
        topo = build_topology(LinkConfig(num_devices=4, topology="full"))
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    assert topo.next_hop[src][dst] == dst

    def test_switch_routes_through_hub(self):
        topo = build_topology(LinkConfig(num_devices=3, topology="switch"))
        hub = 3  # one extra node: the switch
        assert topo.num_nodes == 4
        assert topo.switch_nodes == (hub,)
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    assert topo.next_hop[src][dst] == hub
            assert topo.next_hop[hub][src] == src

    def test_single_device_degenerates(self):
        topo = build_topology(LinkConfig(num_devices=1))
        assert isinstance(topo, FabricTopology)
        assert topo.num_nodes == 1
        assert topo.links == ()


class TestRemotePath:
    def test_remote_read_slower_than_local(self):
        system = MultiGpuSystem(quiet_cfg(), LinkConfig(num_devices=2))
        system.devices[1].preload_region(0, 1 << 16)
        system.devices[0].preload_region(0, 1 << 16)
        remote, local = [], []
        k_remote = remote_kernel(READ, 1, latencies=remote)
        k_local = remote_kernel(READ, None, latencies=local)
        system.devices[0].launch(k_remote)
        system.engine.run_until(
            lambda: k_remote.done, max_cycles=200_000, check_every=16
        )
        system.devices[0].launch(k_local)
        system.engine.run_until(
            lambda: k_local.done, max_cycles=200_000, check_every=16
        )
        # The remote trip pays two link serializations + flight latency.
        assert min(remote) > max(local) + 2 * 150

    def test_switch_pays_two_hops(self):
        def mean_latency(topology, devices):
            system = MultiGpuSystem(
                quiet_cfg(), LinkConfig(num_devices=devices,
                                        topology=topology),
            )
            system.devices[1].preload_region(0, 1 << 16)
            latencies = []
            kernel = remote_kernel(READ, 1, latencies=latencies)
            system.devices[0].launch(kernel)
            system.engine.run_until(
                lambda: kernel.done, max_cycles=400_000, check_every=16
            )
            return sum(latencies) / len(latencies)

        direct = mean_latency("ring", 2)
        hubbed = mean_latency("switch", 2)
        # Device -> hub -> device: roughly double the link latency.
        assert hubbed > direct + 100

    def test_posted_remote_writes_complete(self):
        system = MultiGpuSystem(quiet_cfg(), LinkConfig(num_devices=2))
        system.devices[1].preload_region(0, 1 << 16)
        kernel = remote_kernel(WRITE, 1, ops=8, wait=False)
        system.devices[0].launch(kernel)
        system.engine.run_until(
            lambda: kernel.done and system.all_idle,
            max_cycles=400_000, check_every=16,
        )
        assert kernel.done
        assert system.all_idle


def bidirectional_stimulus(system):
    """Remote traffic both ways plus local background on device 0."""
    system.devices[0].preload_region(0, 1 << 16)
    system.devices[1].preload_region(0, 1 << 16)
    system.devices[0].launch(
        remote_kernel(WRITE, 1, ops=6, warps=2, wait=False)
    )
    system.devices[0].launch(
        remote_kernel(READ, 1, ops=4, base=1 << 12)
    )
    system.devices[1].launch(
        remote_kernel(READ, 0, ops=4, base=1 << 13)
    )


class TestMultiDeviceDeterminism:
    def _digests(self, system):
        return [
            (component.name, component.state_digest())
            for component in system.engine.components
            if component.state_digest() is not None
        ]

    def test_reset_bit_identity(self):
        """Run, reset, run again: cycle counts and digests identical."""
        system = MultiGpuSystem(quiet_cfg(), LinkConfig(num_devices=2))

        def run_once():
            bidirectional_stimulus(system)
            system.run(max_cycles=400_000)
            assert system.all_idle
            return system.cycle, self._digests(system)

        first_cycle, first_digests = run_once()
        system.reset()
        assert system.cycle == 0
        assert system.all_idle
        second_cycle, second_digests = run_once()
        assert second_cycle == first_cycle
        assert second_digests == first_digests

    @pytest.mark.parametrize("topology", ["ring", "switch"])
    def test_lockstep_naive_vs_active(self, topology):
        assert verify_equivalence(
            quiet_cfg(),
            bidirectional_stimulus,
            strategies=("naive", "active"),
            builder=lambda config: MultiGpuSystem(
                config, LinkConfig(num_devices=2, topology=topology),
            ),
            max_cycles=100_000,
        ) is None

    def test_lockstep_three_way_with_vector(self):
        pytest.importorskip("numpy", exc_type=ImportError)
        assert verify_equivalence(
            quiet_cfg(),
            bidirectional_stimulus,
            strategies=("naive", "active", "vector"),
            builder=lambda config: MultiGpuSystem(
                config, LinkConfig(num_devices=2),
            ),
            max_cycles=100_000,
        ) is None


class TestLinkChannel:
    def test_transmits_with_low_error(self):
        channel = LinkCovertChannel(quiet_cfg(), seed_salt=7)
        channel.calibrate(training_symbols=8)
        result = channel.transmit([1, 0, 1, 1, 0, 0, 1, 0])
        assert result.error_rate < 0.5
        assert result.bandwidth_bps > 0

    def test_rejects_unreachable_target(self):
        with pytest.raises(ValueError):
            LinkCovertChannel(quiet_cfg(), target_device=0)
        with pytest.raises(ValueError):
            LinkCovertChannel(
                quiet_cfg(), LinkConfig(num_devices=2), target_device=2
            )

"""Unit tests for the synthetic workload kernels (Algorithm 1)."""

import pytest

from repro.config import small_config
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.workloads import (
    clock_survey_program,
    kernel_footprint_bytes,
    make_streaming_kernel,
)

LINE = 128


def run_streaming(config, **kwargs):
    device = GpuDevice(config)
    durations = kwargs.pop("durations", {})
    kernel = make_streaming_kernel(config, durations=durations, **kwargs)
    footprint = kernel_footprint_bytes(config, kernel)
    stride = kernel.args.get("region_stride", 0)
    active = kernel.args.get("active_sms") or range(config.num_sms)
    for sm in active:
        device.preload_region(sm * stride, footprint)
    device.run_kernels([kernel])
    return device, kernel, durations


class TestStreamingKernel:
    def test_issues_expected_transaction_count(self):
        config = small_config(timing_noise=0)
        device, kernel, _ = run_streaming(
            config, kind="write", ops=5, num_blocks=1
        )
        assert device.stats.counters["sm0.mem_ops"] == 5
        assert device.stats.counters["sm0.transactions"] == 5 * 32

    def test_coalesced_mode_issues_single_transactions(self):
        config = small_config(timing_noise=0)
        device, kernel, _ = run_streaming(
            config, kind="write", ops=5, num_blocks=1, uncoalesced=False
        )
        assert device.stats.counters["sm0.transactions"] == 5

    def test_active_sms_gate(self):
        config = small_config(timing_noise=0)
        device, kernel, _ = run_streaming(
            config, kind="write", ops=4,
            num_blocks=config.num_sms, active_sms={2},
        )
        assert device.stats.counters.get("sm2.mem_ops", 0) == 4
        assert device.stats.counters.get("sm0.mem_ops", 0) == 0

    def test_durations_recorded_per_active_warp(self):
        config = small_config(timing_noise=0)
        _, _, durations = run_streaming(
            config, kind="write", ops=4,
            num_blocks=config.num_sms, active_sms={0, 3},
        )
        sms = {key[0] for key in durations}
        assert sms == {0, 3}
        assert all(value > 0 for value in durations.values())

    def test_duty_reduces_traffic(self):
        config = small_config(timing_noise=0)
        full, _, _ = run_streaming(config, kind="write", ops=10, num_blocks=1)
        half, _, _ = run_streaming(
            config, kind="write", ops=10, num_blocks=1, duty=0.5
        )
        assert (
            half.stats.counters["sm0.transactions"]
            < full.stats.counters["sm0.transactions"]
        )

    def test_duty_override_targets_one_sm(self):
        config = small_config(timing_noise=0)
        device, _, _ = run_streaming(
            config, kind="write", ops=10,
            num_blocks=config.num_sms, active_sms={0, 1},
            duty_overrides={1: 0.0},
        )
        assert device.stats.counters.get("sm0.transactions", 0) > 0
        assert device.stats.counters.get("sm1.transactions", 0) == 0

    def test_region_stride_separates_sms(self):
        config = small_config(timing_noise=0)
        device, kernel, _ = run_streaming(
            config, kind="write", ops=2,
            num_blocks=config.num_sms, active_sms={0, 1},
            region_stride=1 << 20,
        )
        # Both SMs ran without touching each other's lines; just assert
        # traffic happened on both.
        assert device.stats.counters["sm0.transactions"] > 0
        assert device.stats.counters["sm1.transactions"] > 0

    def test_write_kernel_is_channel_bound(self):
        """A streaming writer's duration tracks its flit volume through
        the width-1 TPC channel — the saturation behind Figure 2."""
        config = small_config(timing_noise=0)
        _, _, durations = run_streaming(
            config, kind="write", ops=8,
            num_blocks=config.num_sms, active_sms={0},
        )
        duration = max(durations.values())
        flits = 8 * 32 * config.write_request_flits
        assert duration == pytest.approx(flits, rel=0.25)


class TestClockSurveyProgram:
    def test_records_clock_per_sm(self):
        config = small_config(timing_noise=0)
        device = GpuDevice(config)
        results = {}
        kernel = Kernel(
            clock_survey_program,
            num_blocks=config.num_sms,
            args={"results": results},
            name="survey",
        )
        device.run_kernels([kernel])
        assert set(results) == set(range(config.num_sms))

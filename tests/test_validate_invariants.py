"""Conservation-invariant checker tests (repro.validate.invariants)."""

import tracemalloc
from pathlib import Path

import pytest

from repro.config import medium_config, small_config
from repro.gpu.device import GpuDevice
from repro.gpu.workloads import make_streaming_kernel
from repro.noc.arbiter import make_policy
from repro.noc.buffer import PacketQueue
from repro.noc.mux import Mux
from repro.noc.packet import Packet, READ, WRITE
from repro.sim.engine import Engine
from repro.validate import InvariantChecker, InvariantViolation


def run_validated(config, kind="write", ops=16, blocks=None):
    device = GpuDevice(config)
    device.preload_region(0, 1 << 20)
    device.launch(make_streaming_kernel(
        config, kind, ops=ops, num_blocks=blocks or config.num_sms,
    ))
    device.run()
    device.assert_drained()
    return device


class TestValidatedRuns:
    def test_small_write_run_zero_violations(self):
        config = small_config(validate_enabled=True, timing_noise=0)
        device = run_validated(config, kind="write")
        checker = device.validator
        assert checker.violations == 0
        assert checker.injected > 0
        assert checker.injected == checker.delivered
        assert checker.in_flight_count == 0
        assert checker.checks_run > 0

    def test_small_read_run_zero_violations(self):
        config = small_config(validate_enabled=True)
        device = run_validated(config, kind="read")
        assert device.validator.violations == 0
        assert device.validator.delivered == device.validator.injected

    def test_write_ack_flits_path_zero_violations(self):
        # Non-posted writes: acks travel the reply subnet as real packets.
        config = small_config(validate_enabled=True, write_reply_flits=1)
        device = run_validated(config, kind="write")
        assert device.validator.violations == 0

    def test_single_fifo_reply_ablation_zero_violations(self):
        config = small_config(validate_enabled=True, reply_voq=False)
        device = run_validated(config, kind="read")
        assert device.validator.violations == 0

    def test_validated_interval_reduces_audit_count(self):
        config = small_config(validate_enabled=True, validate_interval=32)
        device = run_validated(config)
        checker = device.validator
        assert checker.violations == 0
        # Roughly one audit per 32 cycles, not one per cycle.
        assert checker.checks_run <= device.cycle // 32 + 2

    def test_validation_does_not_perturb_the_model(self):
        """Seeded runs are bit-identical with the checker on or off."""
        results = {}
        for enabled in (False, True):
            config = small_config(validate_enabled=enabled)
            device = run_validated(config, kind="write")
            results[enabled] = (
                device.cycle,
                dict(device.stats.counters),
                tuple(
                    component.state_digest()
                    for component in device.engine.components
                    if component.state_digest() is not None
                ),
            )
        assert results[False][0] == results[True][0]
        assert results[False][1] == results[True][1]
        assert results[False][2] == results[True][2]

    def test_tpc_covert_channel_with_validation(self):
        from repro.channel import TpcCovertChannel

        config = small_config(validate_enabled=True, validate_interval=8)
        channel = TpcCovertChannel(config)
        channel.calibrate()
        result = channel.transmit([1, 0, 1, 1, 0, 0, 1, 0])
        assert result.error_rate <= 0.25  # validation must not break it

    def test_gpc_covert_channel_with_validation(self):
        from repro.channel.gpc_channel import GpcCovertChannel

        config = medium_config(validate_enabled=True, validate_interval=16)
        channel = GpcCovertChannel(config)
        channel.calibrate()
        result = channel.transmit([1, 0, 1, 0])
        assert result.error_rate <= 0.25


class LeakyQueue(PacketQueue):
    """Test double: swallows the Nth ``commit`` (a lost-flit model bug).

    ``PacketQueue`` uses ``__slots__``, so the fault is injected via a
    subclass rather than monkeypatching the bound method.
    """

    def __init__(self, name, capacity, skip_commit_at, engine):
        super().__init__(name, capacity)
        self._skip_at = skip_commit_at
        self._commits = 0
        self._engine = engine
        self.skipped_cycle = None

    def commit(self, packet):
        index = self._commits
        self._commits += 1
        if index == self._skip_at:
            self.skipped_cycle = self._engine.cycle
            return  # swallow the commit: reserved flits leak forever
        super().commit(packet)


def _bare_switch_rig(skip_commit_at=None):
    """A minimal engine: one queue -> mux -> queue, plus a checker.

    ``skip_commit_at`` drops the Nth (0-based) ``commit`` on the output
    queue — the classic lost-flit bug the checker exists to catch.
    """
    engine = Engine(strategy="naive")
    in_q = PacketQueue("rig.in", 32)
    if skip_commit_at is not None:
        out_q = LeakyQueue("rig.out", 32, skip_commit_at, engine)
    else:
        out_q = PacketQueue("rig.out", 32)
    mux = Mux("rig.mux", [in_q], out_q, width=1,
              policy=make_policy("rr", 1, seed=1))
    checker = InvariantChecker(check_every=1)
    checker.watch_queue(in_q)
    checker.watch_queue(out_q)
    checker.watch_switch(mux)
    engine.register(mux)
    engine.register(checker)
    return engine, in_q, out_q, mux, checker


class TestFaultInjection:
    def test_skipped_commit_is_caught_at_the_right_place(self):
        engine, in_q, out_q, mux, checker = _bare_switch_rig(
            skip_commit_at=0
        )
        in_q.push(Packet(kind=WRITE, address=0, flits=4, src_sm=0,
                         slice_id=0, birth_cycle=0))
        with pytest.raises(InvariantViolation) as excinfo:
            for _ in range(64):
                engine.step(1)
        violation = excinfo.value
        assert violation.kind == "reservation-leak"
        assert violation.component == "rig.out"
        # The checker runs in the same cycle the commit was dropped.
        assert out_q.skipped_cycle is not None
        assert violation.cycle == out_q.skipped_cycle

    def test_clean_rig_drains_without_violation(self):
        engine, in_q, out_q, mux, checker = _bare_switch_rig()
        in_q.push(Packet(kind=WRITE, address=0, flits=4, src_sm=0,
                         slice_id=0, birth_cycle=0))
        engine.step(16)
        assert out_q.pop().flits == 4
        assert checker.violations == 0

    def test_corrupted_used_accounting_is_caught(self):
        engine, in_q, out_q, mux, checker = _bare_switch_rig()
        in_q.push(Packet(kind=READ, address=64, flits=1, src_sm=0,
                         slice_id=0, birth_cycle=0))
        in_q._used_flits += 3  # lie about occupancy
        with pytest.raises(InvariantViolation) as excinfo:
            engine.step(1)
        assert excinfo.value.kind == "used-accounting"
        assert excinfo.value.component == "rig.in"

    def test_capacity_overflow_is_caught(self):
        engine, in_q, out_q, mux, checker = _bare_switch_rig()
        out_q._reserved_flits = out_q.capacity_flits + 1
        with pytest.raises(InvariantViolation) as excinfo:
            engine.step(1)
        assert excinfo.value.kind == "capacity"

    def test_progress_without_head_is_caught(self):
        engine, in_q, out_q, mux, checker = _bare_switch_rig()
        mux._progress[0] = 2
        mux._reserved[0] = True
        with pytest.raises(InvariantViolation) as excinfo:
            engine.step(1)
        assert excinfo.value.kind == "progress-consistency"
        assert excinfo.value.component == "rig.mux"


class TestConservationHooks:
    def _packet(self, uid_hint=0):
        return Packet(kind=READ, address=uid_hint * 128, flits=1,
                      src_sm=0, slice_id=0, birth_cycle=0)

    def test_double_delivery_is_caught(self):
        checker = InvariantChecker()
        packet = self._packet()
        checker.note_inject(packet, cycle=0)
        reply = packet.make_reply(flits=4, cycle=5)
        checker.note_deliver(reply, cycle=9)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.note_deliver(reply, cycle=10)
        assert excinfo.value.kind == "double-delivery"
        assert excinfo.value.cycle == 10

    def test_duplicate_injection_is_caught(self):
        checker = InvariantChecker()
        packet = self._packet()
        checker.note_inject(packet, cycle=0)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.note_inject(packet, cycle=1)
        assert excinfo.value.kind == "duplicate-injection"

    def test_undelivered_packets_fail_the_drain_check(self):
        checker = InvariantChecker()
        checker.note_inject(self._packet(0), cycle=0)
        checker.note_inject(self._packet(1), cycle=2)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_drained(cycle=100)
        assert excinfo.value.kind == "undelivered"
        assert "2 packet(s)" in excinfo.value.detail

    def test_reset_clears_conservation_state(self):
        checker = InvariantChecker()
        checker.note_inject(self._packet(), cycle=0)
        checker.reset()
        assert checker.in_flight_count == 0
        assert checker.injected == 0
        checker.check_drained(cycle=0)  # no violation after reset


class TestDisabledCostsNothing:
    def test_disabled_device_has_no_checker(self, small_cfg):
        device = GpuDevice(small_cfg)
        assert device.validator is None
        names = [c.name for c in device.engine.components]
        assert "validate.checker" not in names

    def test_disabled_hot_path_allocates_nothing_from_validate(self):
        """Same allocation-guard idiom as the telemetry hot-path test."""
        import repro.validate as validate_pkg

        config = small_config(validate_enabled=False)
        device = GpuDevice(config)
        device.preload_region(0, 1 << 18)
        device.launch(make_streaming_kernel(config, "write", ops=4,
                                            num_blocks=2))
        device.run()  # warm up caches/allocators
        device.launch(make_streaming_kernel(config, "write", ops=4,
                                            num_blocks=2))
        tracemalloc.start()
        device.run()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        validate_dir = str(Path(validate_pkg.__file__).parent)
        offenders = [
            stat for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.startswith(validate_dir)
        ]
        assert offenders == []

"""Unit tests for the HBM2-timing memory controller."""

import pytest

from repro.config import DramTiming
from repro.gpu.dram import MemoryController


class Collector:
    def __init__(self):
        self.completed = []

    def __call__(self, token, cycle):
        self.completed.append((token, cycle))


def make_mc():
    done = Collector()
    mc = MemoryController("mc0", DramTiming(), on_complete=done)
    return mc, done


def run(mc, cycles, start=0):
    for cycle in range(start, start + cycles):
        mc.tick(cycle)
    return start + cycles


class TestTiming:
    def test_first_access_uses_activation_latency(self):
        mc, done = make_mc()
        mc.enqueue(0, False, "a")
        run(mc, 400)
        assert len(done.completed) == 1
        token, cycle = done.completed[0]
        timing = DramTiming()
        expected = (
            timing.t_rcd + timing.t_cl + MemoryController.BURST_CYCLES
            + timing.t_overhead
        )
        assert cycle == expected

    def test_row_hit_faster_than_row_miss(self):
        timing = DramTiming()
        # Same row twice: second access is a row hit.
        mc, done = make_mc()
        mc.enqueue(0, False, "a")
        mc.enqueue(64, False, "b")
        run(mc, 800)
        hit_delta = done.completed[1][1] - done.completed[0][1]
        # Different rows in the same bank: row miss is slower.
        mc2, done2 = make_mc()
        row_bytes = MemoryController.ROW_BYTES
        banks = MemoryController.NUM_BANKS
        mc2.enqueue(0, False, "a")
        mc2.enqueue(row_bytes * banks, False, "b")  # same bank, new row
        run(mc2, 900)
        miss_delta = done2.completed[1][1] - done2.completed[0][1]
        assert miss_delta > hit_delta

    def test_fifo_completion_order_same_bank(self):
        mc, done = make_mc()
        for index in range(4):
            mc.enqueue(index * 64, False, index)
        run(mc, 1600)
        assert [token for token, _ in done.completed] == [0, 1, 2, 3]

    def test_pending_counts_queued_and_in_flight(self):
        mc, done = make_mc()
        mc.enqueue(0, False, "a")
        mc.enqueue(64, False, "b")
        assert mc.pending() == 2
        run(mc, 5)
        assert mc.pending() >= 1
        run(mc, 1200, start=5)
        assert mc.pending() == 0

    def test_row_hit_statistics(self):
        from repro.sim.stats import StatsRegistry

        stats = StatsRegistry()
        mc = MemoryController(
            "mc0", DramTiming(), on_complete=lambda t, c: None, stats=stats
        )
        mc.enqueue(0, False, "a")
        mc.enqueue(64, False, "b")
        for cycle in range(800):
            mc.tick(cycle)
        assert stats.counters["mc0.requests"] == 2
        assert stats.counters["mc0.row_hits"] == 1

    def test_reset_clears_state(self):
        mc, done = make_mc()
        mc.enqueue(0, False, "a")
        run(mc, 3)
        mc.reset()
        assert mc.pending() == 0
        run(mc, 900, start=3)
        assert not done.completed

"""Property tests: arbitrary warp programs must run to completion with
all SM invariants intact (no stuck warps, credits restored, queues
drained).  This fuzzes the whole SM/NoC/L2 pipeline."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import small_config
from repro.gpu.coalescer import lane_addresses_uncoalesced
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.warp import (
    MemOp,
    ReadClock,
    WaitCycles,
    WaitUntilClock,
    READ,
    WRITE,
)

LINE = 128

# A program step: (kind, argument) tuples interpreted by build_program.
step_strategy = st.one_of(
    st.tuples(st.just("read"), st.integers(0, 15)),
    st.tuples(st.just("write"), st.integers(0, 15)),
    st.tuples(st.just("read_wide"), st.integers(0, 3)),
    st.tuples(st.just("wait"), st.integers(1, 120)),
    st.tuples(st.just("clock"), st.just(0)),
    st.tuples(st.just("until"), st.integers(1, 200)),
)


def build_program(steps):
    def program(ctx):
        for kind, arg in steps:
            if kind == "read":
                yield MemOp(READ, [arg * LINE])
            elif kind == "write":
                yield MemOp(WRITE, [arg * LINE])
            elif kind == "read_wide":
                yield MemOp(
                    READ,
                    lane_addresses_uncoalesced(arg * 32 * LINE, LINE, lanes=8),
                )
            elif kind == "wait":
                yield WaitCycles(arg)
            elif kind == "clock":
                value = yield ReadClock()
                assert value >= 0
            elif kind == "until":
                now = yield ReadClock()
                yield WaitUntilClock(now + arg)

    return program


class TestWarpProgramFuzz:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=st.lists(step_strategy, max_size=12))
    def test_any_program_completes_and_restores_credits(self, steps):
        config = small_config(timing_noise=0)
        device = GpuDevice(config)
        device.preload_region(0, 256 * LINE)
        kernel = Kernel(build_program(steps), num_blocks=1, name="fuzz")
        device.run_kernels([kernel], max_cycles=300_000)
        assert kernel.done
        device.engine.step(1500)  # drain posted writes
        sm = device.sms[0]
        assert sm._read_credits == config.sm_mshrs
        assert sm._write_credits == config.sm_write_buffer
        # Every NoC queue must be empty once the machine is quiet.
        for queue in device.inject_queues:
            assert len(queue) == 0
        for queue in device.tpc_queues:
            assert len(queue) == 0
        for queue in device.gpc_queues:
            assert len(queue) == 0

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        steps=st.lists(step_strategy, max_size=8),
        warps=st.integers(1, 4),
    )
    def test_multi_warp_programs_complete(self, steps, warps):
        config = small_config(timing_noise=0)
        device = GpuDevice(config)
        device.preload_region(0, 256 * LINE)
        kernel = Kernel(
            build_program(steps),
            num_blocks=2,
            warps_per_block=warps,
            name="fuzz",
        )
        device.run_kernels([kernel], max_cycles=400_000)
        assert kernel.done

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=st.lists(step_strategy, min_size=1, max_size=8))
    def test_deterministic_replay(self, steps):
        def run():
            config = small_config(timing_noise=0)
            device = GpuDevice(config)
            device.preload_region(0, 256 * LINE)
            kernel = Kernel(build_program(steps), num_blocks=1, name="f")
            times = device.run_kernels([kernel], max_cycles=300_000)
            return times["f"]

        assert run() == run()

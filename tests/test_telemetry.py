"""Telemetry subsystem: tracer, timelines, exporters, and invariants.

The load-bearing guarantees tested here:

* seeded runs are bit-identical with telemetry on or off,
* the event stream is identical under the naive and active engine
  strategies (no phantom or missing events from fast-forwarding),
* no recorded event carries a cycle inside a fast-forwarded gap,
* the telemetry-disabled hot path performs no allocations attributable
  to the telemetry package.
"""

import json
import tracemalloc
from dataclasses import replace

import pytest

import repro.telemetry as telemetry_pkg
from repro.channel.metrics import slot_contention
from repro.channel.tpc_channel import TpcCovertChannel
from repro.config import small_config
from repro.gpu.device import GpuDevice
from repro.runner import SimJob, execute, merge_telemetry
from repro.telemetry import (
    Telemetry,
    Tracer,
    chrome_trace,
    collecting,
    write_chrome_trace,
)
from repro.telemetry.timeline import LinkSeries, QueueMeter, Timeline


BITS = [1, 0, 1, 1, 0, 0, 1, 0]


def _transmit(config):
    channel = TpcCovertChannel(config)
    result = channel.transmit(BITS)
    return channel, result


def _telemetry_cfg(**overrides):
    return replace(small_config(), telemetry_enabled=True, **overrides)


class TestTracer:
    def test_ring_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for cycle in range(10):
            tracer.emit(cycle, 0, 0)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.recorded == 10
        assert [event[0] for event in tracer] == [6, 7, 8, 9]

    def test_clear(self):
        tracer = Tracer(capacity=2)
        tracer.emit(0, 0, 0)
        tracer.emit(1, 0, 0)
        tracer.emit(2, 0, 0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestTimeline:
    def test_link_series_buckets_by_epoch(self):
        series = LinkSeries("link", width=2, epoch_cycles=10)
        series.add(3, 1)
        series.add(9, 1)
        series.add(10, 4)
        assert series.flits == {0: 2, 1: 4}
        assert series.total_flits == 6
        assert series.utilization() == {0: 0.1, 1: 0.2}
        assert series.peak_utilization == 0.2

    def test_queue_meter_tracks_epoch_peaks(self):
        class FakeQueue:
            name = "q"
            used_flits = 1

        meter = QueueMeter("q", FakeQueue())
        meter.note(3)
        meter.note(2)
        meter.flush(0)
        assert meter.series == {0: 3}
        # The standing occupancy seeds the next epoch.
        meter.flush(1)
        assert meter.series == {0: 3, 1: 1}
        assert meter.peak_flits == 3

    def test_timeline_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            Timeline(epoch_cycles=0)


class TestBitIdenticalWithTelemetry:
    def test_channel_results_identical_on_off(self):
        _, off = _transmit(small_config())
        _, on = _transmit(_telemetry_cfg())
        assert on.received_symbols == off.received_symbols
        assert on.cycles == off.cycles
        assert on.measurements == off.measurements
        assert off.telemetry is None
        assert on.telemetry is not None

    def test_stats_counters_identical_on_off(self):
        def run(config):
            from repro.gpu.kernel import Kernel
            from repro.gpu.warp import MemOp
            from repro.noc.packet import READ

            device = GpuDevice(config)
            device.preload_region(0, 4096)

            def program(ctx):
                for i in range(16):
                    yield MemOp(READ, [i * 32])

            device.launch(Kernel(program, num_blocks=2, warps_per_block=1))
            device.run()
            return device.stats.snapshot(), device.engine.cycle

        off = run(small_config())
        on = run(_telemetry_cfg())
        assert on == off


def _normalized_events(hub):
    """Event stream with packet uids renumbered by first appearance.

    Packet uids come from a process-global counter, so two otherwise
    identical runs see different absolute uids; everything else in the
    stream (cycles, kinds, components, ports) must match exactly.
    """
    from repro.telemetry.events import KIND_ARGS

    remap = {}
    out = []
    for cycle, kind, component, *payload in hub.tracer:
        fields = KIND_ARGS[kind]
        for slot, field in enumerate(fields):
            if field == "uid":
                uid = payload[slot]
                payload[slot] = remap.setdefault(uid, len(remap))
        out.append((cycle, kind, component, *payload))
    return out


class TestEventOrderingAcrossStrategies:
    def test_event_stream_identical_naive_vs_active(self):
        streams = {}
        for strategy in ("naive", "active"):
            config = _telemetry_cfg(engine_strategy=strategy)
            channel, _ = _transmit(config)
            assert channel.last_telemetry is not None
            with collecting() as frame:
                _transmit(config)
            streams[strategy] = [
                _normalized_events(hub) for hub in frame.hubs()
            ]
        assert streams["naive"] == streams["active"]

    def test_no_event_inside_fast_forward_span(self):
        with collecting() as frame:
            _transmit(_telemetry_cfg())
        hub = frame.hubs()[0]
        spans = hub.fast_forwards
        assert spans, "active strategy should have fast-forwarded"
        # Events are emitted only from ticks; fast-forward only happens
        # when nothing ticks, so no event cycle may fall in [frm, to).
        boundaries = sorted(spans)
        for cycle, *_ in hub.tracer:
            for frm, to in boundaries:
                assert not (frm <= cycle < to), (
                    f"event at cycle {cycle} inside skipped span "
                    f"[{frm}, {to})"
                )


class TestHubAndManifest:
    def test_manifest_reports_events_links_and_latency(self):
        with collecting() as frame:
            _transmit(_telemetry_cfg())
        manifest = frame.manifest()
        assert manifest["devices"] >= 1
        assert manifest["read_latency"]["count"] > 0
        device_entry = manifest["per_device"][0]
        assert device_entry["events"]["recorded"] > 0
        assert device_entry["links"]  # at least one active link series
        assert device_entry["read_latency_percentiles"]["p50"] > 0
        # Must survive a JSON round trip (attached to runner results).
        assert json.loads(json.dumps(manifest)) == manifest

    def test_contention_timeline_aligns_with_bit_schedule(self):
        config = _telemetry_cfg(telemetry_epoch_cycles=32)
        channel, result = _transmit(config)
        with collecting() as frame:
            channel2 = TpcCovertChannel(config)
            channel2._channel_thresholds = channel._channel_thresholds
            channel2.params = channel.params
            result = channel2.transmit(BITS)
        hub = frame.hubs()[0]
        # The sender/receiver pair lives on one TPC: its mux link series
        # must show more traffic during '1' slots than '0' slots.
        series = {s.name: s for s in hub.timeline.links}
        tpc_links = [s for n, s in series.items()
                     if n.startswith("tpc") and s.flits]
        assert tpc_links
        link = max(tpc_links, key=lambda s: s.total_flits)
        slot_cycles = result.cycles // len(BITS)
        slots = slot_contention(
            link.flits, hub.timeline.epoch_cycles,
            slot_cycles, len(BITS),
        )
        ones = [slots[i] for i, bit in enumerate(BITS) if bit]
        zeros = [slots[i] for i, bit in enumerate(BITS) if not bit]
        assert min(ones) > max(zeros)

    def test_slot_contention_prorates_straddling_epochs(self):
        # One epoch of 10 cycles with 10 flits, slots of 5 cycles.
        assert slot_contention({0: 10}, 10, 5, 4) == [5, 5, 0, 0]
        with pytest.raises(ValueError):
            slot_contention({}, 0, 5, 4)

    def test_fast_forward_cap(self):
        hub = Telemetry(ring_capacity=8)
        from repro.telemetry.hub import MAX_FAST_FORWARDS

        for i in range(MAX_FAST_FORWARDS + 5):
            hub.note_fast_forward(i, i + 1)
        assert len(hub.fast_forwards) == MAX_FAST_FORWARDS
        section = hub.manifest()["fast_forward"]
        assert section["spans"] == MAX_FAST_FORWARDS + 5
        assert section["recorded"] == MAX_FAST_FORWARDS
        assert section["dropped"] == 5
        # Retained spans still sum; dropped ones make it a lower bound.
        assert section["cycles"] == MAX_FAST_FORWARDS
        hub.reset()
        fresh = hub.manifest()["fast_forward"]
        assert fresh["dropped"] == 0 and fresh["spans"] == 0


class TestChromeTraceExport:
    def test_trace_json_has_grant_events_and_rtt_spans(self, tmp_path):
        with collecting() as frame:
            _transmit(_telemetry_cfg())
        out = tmp_path / "trace.json"
        write_chrome_trace(str(out), frame.hubs())
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert {"M", "i", "X", "C"} <= phases
        grants = [e for e in events if e["name"] == "mux_grant"]
        assert grants and all(e["ph"] == "i" for e in grants)
        spans = [e for e in events if e["name"] == "l2_round_trip"]
        assert spans
        for span in spans:
            assert span["ph"] == "X"
            assert span["dur"] == span["args"]["latency"]
            assert span["ts"] >= 0
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert any(name.startswith("tpc") for name in thread_names)

    def test_multiple_hubs_become_processes(self):
        with collecting() as frame:
            _transmit(_telemetry_cfg())
        hubs = frame.hubs()
        assert len(hubs) == 2  # calibrate + transmit each built a device
        trace = chrome_trace(hubs)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 1}


class TestRunnerIntegration:
    def test_device_less_job_results_unchanged(self):
        job = SimJob(fn="tests.test_runner.double",
                     config=small_config(), seed=99, params={"factor": 3})
        assert execute(job) == {"seed": 99, "value": 297}

    def test_device_job_gains_telemetry_manifest(self):
        job = SimJob(
            fn="repro.runner.workloads.table2_point",
            config=small_config(),
            params={"kind": "tpc", "bits_per_channel": 4, "seed": 5},
        )
        result = execute(job)
        section = result["telemetry"]
        assert section["devices"] >= 1
        assert section["read_latency"]["count"] > 0

    def test_merge_telemetry_aggregates_jobs(self):
        jobs = [
            SimJob(
                fn="repro.runner.workloads.table2_point",
                config=small_config(),
                params={"kind": "tpc", "bits_per_channel": 4, "seed": s},
            )
            for s in (5, 6)
        ]
        results = [execute(job) for job in jobs]
        merged = merge_telemetry(results)
        assert merged["jobs"] == 2
        expected = sum(
            r["telemetry"]["read_latency"]["count"] for r in results
        )
        assert merged["read_latency"]["count"] == expected

    def test_merge_telemetry_none_without_sections(self):
        assert merge_telemetry([{"a": 1}, 7, None]) is None


class TestDisabledHotPath:
    def test_disabled_run_allocates_nothing_in_telemetry_package(self):
        """Tier-1 regression: telemetry off must cost one branch, not
        allocations or event work, on the per-cycle hot path."""
        config = small_config()
        # Warm up imports and caches outside the measurement window.
        _transmit(config)
        package_dir = telemetry_pkg.__path__[0]
        tracemalloc.start()
        try:
            _transmit(config)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        telemetry_allocs = [
            stat
            for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.startswith(package_dir)
        ]
        assert telemetry_allocs == []

    def test_disabled_device_has_no_probe_or_hooks(self):
        device = GpuDevice(small_config())
        assert device.telemetry is None
        assert device.telemetry_manifest() is None
        assert device.engine.on_fast_forward is None
        names = [c.name for c in device.engine.components]
        assert "telemetry.probe" not in names
        assert all(q.meter is None for q in device.inject_queues)

    def test_enabled_device_registers_probe_last_enough(self):
        device = GpuDevice(_telemetry_cfg())
        names = [c.name for c in device.engine.components]
        assert names[-1] == "telemetry.probe"
        assert device.engine.on_fast_forward is not None


class TestCliTrace:
    def test_trace_command_writes_valid_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        code = main(["trace", "--figure", "transmit", "--bits", "8",
                     "--out", str(out)])
        assert code == 0
        trace = json.loads(out.read_text())
        assert any(e["name"] == "mux_grant" for e in trace["traceEvents"])
        assert "wrote" in capsys.readouterr().out

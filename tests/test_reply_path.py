"""Unit tests for the GPC reply distributor and reply-path budgets."""

import pytest

from repro.config import small_config
from repro.gpu.reply_path import GpcReplyDistributor
from repro.noc.buffer import PacketQueue
from repro.noc.packet import Packet, READ


def reply_packet(src_sm, flits=4):
    return Packet(
        kind=READ, address=0, flits=flits, src_sm=src_sm, slice_id=0,
        is_reply=True,
    )


def build(config=None, gpc=0):
    config = config or small_config()
    queue = PacketQueue("in", 256)
    delivered = []
    members = config.gpc_members()[gpc]
    distributor = GpcReplyDistributor(
        gpc, config, queue, members,
        deliver=lambda packet, cycle: delivered.append((packet, cycle)),
    )
    return config, queue, distributor, delivered


class TestDistribution:
    def test_delivers_to_destination_sm(self):
        config, queue, distributor, delivered = build()
        queue.push(reply_packet(src_sm=0))
        distributor.tick(0)
        distributor.tick(1)
        assert len(delivered) == 1
        assert delivered[0][0].src_sm == 0

    def test_gpc_width_limits_flits_per_cycle(self):
        config, queue, distributor, delivered = build()
        width = config.gpc_reply_width
        for _ in range(4):
            queue.push(reply_packet(src_sm=0, flits=4))
        distributor.tick(0)
        # 4-flit packets over a width-3 channel: at most floor progress.
        assert len(delivered) <= max(1, width // 4 + 1)

    def test_throughput_matches_width(self):
        config, queue, distributor, delivered = build()
        width = config.gpc_reply_width
        packets = 12
        for _ in range(packets):
            queue.push(reply_packet(src_sm=0, flits=4))
        cycles = 0
        while len(delivered) < packets and cycles < 500:
            distributor.tick(cycles)
            cycles += 1
        assert len(delivered) == packets
        # 12 packets x 4 flits / width flits-per-cycle, +1 slack.
        assert cycles <= (packets * 4) // width + 3

    def test_wrong_gpc_reply_raises(self):
        config, queue, distributor, delivered = build(gpc=0)
        # An SM of GPC1 must never appear on GPC0's reply channel.
        foreign_sm = config.tpc_sms(config.gpc_members()[1][0])[0]
        queue.push(reply_packet(src_sm=foreign_sm))
        with pytest.raises(RuntimeError):
            distributor.tick(0)

    def test_reset_clears_progress(self):
        config, queue, distributor, delivered = build()
        queue.push(reply_packet(src_sm=0, flits=4))
        distributor.tick(0)  # partial progress (width 3 < 4 flits)
        distributor.reset()
        assert distributor._progress == 0
        assert not queue


class TestPerTpcBudget:
    def test_one_tpc_cannot_hog_beyond_its_reply_width(self):
        config = small_config(gpc_reply_width=8, tpc_reply_width=2)
        _, queue, distributor, delivered = build(config)
        # All replies to TPC0's SM0: per-TPC budget (2) binds, not the
        # GPC budget (8).
        for _ in range(6):
            queue.push(reply_packet(src_sm=0, flits=2))
        distributor.tick(0)
        assert len(delivered) == 1  # 2 flits = one 2-flit packet
        distributor.tick(1)
        assert len(delivered) == 2

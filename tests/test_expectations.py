"""Unit tests for the expectation DSL and its small-sample statistics."""

import math

import pytest

from repro.testing.expectations import (
    Expectation,
    above,
    below,
    between,
    flat,
    monotonic,
    ordering,
    ratio_near,
    slope_between,
)
from repro.testing.stats import (
    ConfidenceInterval,
    bands_overlap,
    least_squares_slope,
    mean_interval,
    pointwise_intervals,
    pointwise_means,
    sample_std,
    t_critical,
    welch_margin,
)


class TestTCritical:
    def test_tabulated_values(self):
        assert t_critical(1, 0.95) == pytest.approx(12.706)
        assert t_critical(2, 0.95) == pytest.approx(4.303)
        assert t_critical(10, 0.99) == pytest.approx(3.169)
        assert t_critical(30, 0.90) == pytest.approx(1.697)

    def test_large_df_uses_tail_entries(self):
        assert t_critical(35, 0.95) == pytest.approx(2.021)  # df<=40 row
        assert t_critical(100, 0.95) == pytest.approx(1.980)  # df<=120 row
        assert t_critical(10_000, 0.95) == pytest.approx(1.960)  # z limit

    def test_untabulated_confidence_rounds_stricter(self):
        # 0.97 is not tabulated; must use the stricter 0.99 row.
        assert t_critical(5, 0.97) == t_critical(5, 0.99)

    def test_df_below_one_rejected(self):
        with pytest.raises(ValueError):
            t_critical(0)


class TestIntervals:
    def test_single_sample_has_zero_half_width(self):
        ci = mean_interval([4.2])
        assert ci.mean == 4.2
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 4.2

    def test_interval_matches_hand_computation(self):
        samples = [10.0, 12.0, 14.0]
        ci = mean_interval(samples, 0.95)
        expected_half = 4.303 * sample_std(samples) / math.sqrt(3)
        assert ci.mean == pytest.approx(12.0)
        assert ci.half_width == pytest.approx(expected_half)
        assert ci.n == 3

    def test_sample_std_degenerate(self):
        assert sample_std([]) == 0.0
        assert sample_std([7.0]) == 0.0
        assert sample_std([3.0, 3.0, 3.0]) == 0.0

    def test_welch_margin_zero_for_degenerate_sweeps(self):
        assert welch_margin([1.0], [2.0]) == 0.0
        assert welch_margin([5.0, 5.0], [5.0, 5.0]) == 0.0

    def test_welch_margin_grows_with_spread(self):
        tight = welch_margin([1.0, 1.01, 0.99], [1.0, 1.02, 0.98])
        wide = welch_margin([1.0, 2.0, 0.0], [1.0, 3.0, -1.0])
        assert wide > tight > 0.0

    def test_welch_margin_rejects_empty(self):
        with pytest.raises(ValueError):
            welch_margin([], [1.0])


class TestSeriesStats:
    def test_pointwise_means(self):
        assert pointwise_means([[1.0, 3.0], [3.0, 5.0]]) == [2.0, 4.0]

    def test_pointwise_means_rejects_ragged(self):
        with pytest.raises(ValueError):
            pointwise_means([[1.0, 2.0], [1.0]])

    def test_pointwise_intervals(self):
        cis = pointwise_intervals([[1.0, 3.0], [3.0, 5.0]])
        assert [ci.mean for ci in cis] == [2.0, 4.0]
        assert all(isinstance(ci, ConfidenceInterval) for ci in cis)

    def test_least_squares_slope(self):
        assert least_squares_slope([0, 1, 2], [1, 3, 5]) == pytest.approx(2.0)
        assert least_squares_slope([1, 1], [0, 10]) == 0.0  # degenerate x
        with pytest.raises(ValueError):
            least_squares_slope([1], [2])

    def test_bands_overlap(self):
        assert bands_overlap(0, 1, 1, 2)  # touching counts
        assert not bands_overlap(0, 1, 1.1, 2)
        assert bands_overlap(-math.inf, 0.5, 0.0, math.inf)


class TestBandExpectations:
    def test_ratio_near_passes_inside_band(self):
        exp = ratio_near("x.double", "ratio", 2.0, rel_tol=0.1)
        result = exp.evaluate({"ratio": [1.95, 2.0, 2.05]})
        assert result.ok
        assert "PASS" in result.line()

    def test_ratio_near_fails_outside_band(self):
        exp = ratio_near("x.double", "ratio", 2.0, rel_tol=0.05)
        result = exp.evaluate({"ratio": [1.0, 1.0, 1.0]})
        assert not result.ok
        assert "FAIL x.double" in result.line()

    def test_band_is_statistical_not_epsilon(self):
        # Mean 1.25 lies outside [0.9, 1.1], but the sweep is noisy
        # enough that the CI reaches the band -> statistically a pass.
        exp = between("x.b", "m", 0.9, 1.1)
        noisy = {"m": [0.7, 1.25, 1.8]}
        assert exp.evaluate(noisy).ok
        # The same mean with a tight sweep is a clear fail.
        tight = {"m": [1.24, 1.25, 1.26]}
        assert not exp.evaluate(tight).ok

    def test_flat_below_above(self):
        assert flat("x.f", "m", tol=0.1).evaluate({"m": [0.02, -0.03]}).ok
        assert below("x.lo", "m", 5.0).evaluate({"m": [4.0, 4.5]}).ok
        assert not below("x.lo", "m", 5.0).evaluate({"m": [6.0, 6.0]}).ok
        assert above("x.hi", "m", 5.0).evaluate({"m": [6.0, 7.0]}).ok
        assert not above("x.hi", "m", 5.0).evaluate({"m": [1.0, 1.0]}).ok

    def test_slope_between_describe_mentions_band(self):
        exp = slope_between("x.s", "slope", 0.8, 1.2)
        assert "[0.8, 1.2]" in exp.describe()

    def test_missing_metric_fails_with_detail(self):
        result = ratio_near("x.r", "gone", 2.0).evaluate({"other": [1.0]})
        assert not result.ok
        assert "gone" in result.detail


class TestOrderingExpectations:
    def test_ordering_passes_when_strictly_decreasing(self):
        exp = ordering("x.ord", ("a", "b", "c"))
        samples = {"a": [3.0, 3.1], "b": [2.0, 2.1], "c": [1.0, 1.1]}
        assert exp.evaluate(samples).ok

    def test_ordering_fails_on_inversion(self):
        exp = ordering("x.ord", ("a", "b"), min_gap=0.5)
        result = exp.evaluate({"a": [1.0, 1.0], "b": [2.0, 2.0]})
        assert not result.ok
        assert "a" in result.detail and "b" in result.detail

    def test_ordering_optimistic_gap_spares_noisy_ties(self):
        # Means are tied, but wide intervals make the optimistic gap
        # exceed zero, so a no-gap ordering does not fail.
        exp = ordering("x.ord", ("a", "b"))
        noisy = {"a": [0.5, 1.5], "b": [0.5, 1.5]}
        assert exp.evaluate(noisy).ok

    def test_ordering_requires_two_metrics(self):
        with pytest.raises(ValueError):
            ordering("x.bad", ("only",))


class TestMonotonicExpectations:
    def test_increasing_series_passes(self):
        exp = monotonic("x.mono", "series")
        assert exp.evaluate({"series": [[1, 2, 3], [1, 2, 4]]}).ok

    def test_decreasing_direction(self):
        exp = monotonic("x.mono", "series", direction="decreasing")
        assert exp.evaluate({"series": [[3, 2, 1]]}).ok
        result = exp.evaluate({"series": [[1, 2, 3]]})
        assert not result.ok
        assert "step 0" in result.detail

    def test_slack_tolerates_small_dips(self):
        exp = monotonic("x.mono", "series", slack=0.5)
        assert exp.evaluate({"series": [[1.0, 0.8, 2.0]]}).ok
        assert not exp.evaluate({"series": [[1.0, 0.2, 2.0]]}).ok

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            monotonic("x.bad", "series", direction="sideways")


class TestExpectationPlumbing:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Expectation(id="x", kind="wavy", metrics=("m",))

    def test_to_dict_encodes_infinite_bounds_as_none(self):
        d = below("x.lo", "m", 3.0).to_dict()
        assert d["band"] == [None, 3.0]
        assert d["kind"] == "band"

    def test_result_to_dict_round_trip_fields(self):
        result = ratio_near("x.r", "m", 1.0).evaluate({"m": [1.0]})
        d = result.to_dict()
        assert d["expectation"] == "x.r"
        assert d["ok"] is True
        assert set(d) == {
            "expectation", "kind", "metric", "ok", "observed",
            "expected", "detail",
        }

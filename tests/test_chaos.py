"""Chaos harness: seeded fault injection against the supervised runner.

The full drill (reference sweep, chaos sweep, resume, cache-corruption
quarantine) runs here at a reduced budget — every timeout is well under
a second and injected hangs are killed, not waited out.
"""

import pytest

from repro.config import small_config
from repro.runner import run_chaos
from repro.runner.chaos import (
    CHAOS_STATE_ENV,
    FAULT_PLANS,
    assign_faults,
    attempts_recorded,
    chaos_point,
)


class TestChaosPoint:
    def test_ok_payload_is_attempt_independent(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_STATE_ENV, str(tmp_path))
        config = small_config()
        first = chaos_point(config, token="t", plan="ok", value=3)
        second = chaos_point(config, token="t", plan="ok", value=3)
        assert first == second
        assert attempts_recorded(tmp_path, "t") == 2

    def test_plan_schedule_consumes_one_step_per_attempt(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_STATE_ENV, str(tmp_path))
        config = small_config()
        with pytest.raises(RuntimeError, match="attempt=1"):
            chaos_point(config, token="x", plan="raise,ok")
        result = chaos_point(config, token="x", plan="raise,ok", value=5)
        assert result["value"] == 5

    def test_last_step_repeats(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_STATE_ENV, str(tmp_path))
        config = small_config()
        for attempt in range(3):
            with pytest.raises(RuntimeError):
                chaos_point(config, token="y", plan="raise")

    def test_without_state_env_every_call_is_attempt_one(
        self, monkeypatch
    ):
        monkeypatch.delenv(CHAOS_STATE_ENV, raising=False)
        with pytest.raises(RuntimeError, match="attempt=1"):
            chaos_point(small_config(), token="z", plan="raise,ok")


class TestFaultAssignment:
    def test_deterministic_and_one_per_kind(self):
        kinds = tuple(FAULT_PLANS)
        first = assign_faults(7, 32, kinds)
        assert first == assign_faults(7, 32, kinds)
        assert len(first) == len(kinds)
        assert sorted(first.values()) == sorted(
            FAULT_PLANS[kind] for kind in kinds
        )

    def test_seed_moves_the_faults(self):
        kinds = tuple(FAULT_PLANS)
        assert assign_faults(1, 32, kinds) != assign_faults(2, 32, kinds)

    def test_more_kinds_than_jobs(self):
        plans = assign_faults(0, 2, tuple(FAULT_PLANS))
        assert len(plans) == 2


class TestChaosDrill:
    def test_full_drill_passes_at_reduced_budget(self, tmp_path):
        report = run_chaos(
            seed=3, num_jobs=10, timeout_s=0.3, backoff_s=0.01,
            scratch=tmp_path / "scratch",
        )
        assert report.problems == []
        assert report.ok
        assert report.healthy_identical
        assert report.recovered_identical
        # All three hard-kill fault kinds actually fired.
        assert report.counters["failures_exception"] >= 1
        assert report.counters["failures_timeout"] >= 1
        assert report.counters["failures_worker_death"] >= 1
        # The fatal plans surfaced as structured failures...
        assert [f["kind"] for f in report.failures]
        assert report.expected_failures
        # ...and resume re-executed exactly those.
        tokens = [f"job{i:03d}" for i in report.resume["reexecuted"]]
        assert tokens == report.expected_failures
        assert report.resume["failures"] == 0
        # Cache corruption was quarantined, not silently replayed.
        assert report.quarantine["quarantined"] == 2

    def test_single_kind_budget(self, tmp_path):
        report = run_chaos(
            seed=1, num_jobs=4, kinds=("transient-raise",),
            timeout_s=0.3, backoff_s=0.01, scratch=tmp_path / "s",
        )
        assert report.ok
        assert report.counters["failures_exception"] == 1
        assert report.counters.get("failures_timeout", 0) == 0
        assert report.failures == []

    def test_report_round_trips_to_json(self, tmp_path):
        import json

        report = run_chaos(
            seed=2, num_jobs=4, kinds=("transient-exit",),
            timeout_s=0.3, backoff_s=0.01, scratch=tmp_path / "s",
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["jobs"] == 4

"""Tests for the GPUGuard-style contention-anomaly detector."""

import pytest

from repro.config import small_config
from repro.defense.detection import (
    DetectorModel,
    TpcTelemetry,
    benign_trace,
    covert_channel_trace,
    run_detection_study,
    train_detector,
)
from repro.gpu.benign import BENIGN_WORKLOADS, make_benign_kernel


class TestTelemetryFeatures:
    def test_empty_trace_features_zero(self):
        trace = TpcTelemetry(tpc=0, subwindow_cycles=128)
        features = trace.features()
        assert all(value == 0.0 for value in features.values())

    def test_constant_traffic_low_burstiness(self):
        trace = TpcTelemetry(0, 128, flits=[40] * 16)
        features = trace.features()
        assert features["duty"] == 1.0
        assert features["burstiness"] == pytest.approx(0.0)
        assert features["transitions"] == 0.0

    def test_on_off_traffic_is_bimodal_and_bursty(self):
        trace = TpcTelemetry(0, 128, flits=[100, 0, 100, 0, 100, 0, 100, 0])
        features = trace.features()
        assert features["bimodality"] == pytest.approx(1.0)
        assert features["transitions"] == 1.0
        assert features["burstiness"] > 10
        assert features["duty"] == 0.5

    def test_idle_trace(self):
        trace = TpcTelemetry(0, 128, flits=[0] * 10)
        features = trace.features()
        assert features["duty"] == 0.0
        assert features["bimodality"] == 0.0


class TestClassifier:
    def test_training_learns_separating_stump(self):
        covert = [{"x": 10.0, "y": 0.1}, {"x": 12.0, "y": 0.2}]
        benign = [{"x": 1.0, "y": 0.15}, {"x": 2.0, "y": 0.12}]
        model = train_detector(covert, benign, max_stumps=1)
        assert "x" in model.stumps
        assert model.classify({"x": 11.0, "y": 0.1})
        assert not model.classify({"x": 0.5, "y": 0.1})

    def test_votes_needed_majority(self):
        model = DetectorModel(
            stumps={"a": (1.0, 1), "b": (1.0, 1), "c": (1.0, 1)},
            votes_needed=2,
        )
        assert model.classify({"a": 2.0, "b": 2.0, "c": 0.0})
        assert not model.classify({"a": 2.0, "b": 0.0, "c": 0.0})

    def test_training_requires_both_classes(self):
        with pytest.raises(ValueError):
            train_detector([], [{"x": 1.0}])


class TestTraces:
    @pytest.fixture(scope="class")
    def cfg(self):
        return small_config()

    def test_covert_trace_is_bursty_and_bimodal(self, cfg):
        features = covert_channel_trace(cfg, seed=1)
        assert features["burstiness"] > 30
        assert features["bimodality"] > 0.3
        assert 0.2 < features["duty"] < 0.95

    def test_streaming_trace_is_steady(self, cfg):
        features = benign_trace(cfg, "streaming", seed=1)
        assert features["duty"] > 0.9
        assert features["burstiness"] < 10

    def test_unknown_workload_rejected(self, cfg):
        with pytest.raises(ValueError):
            make_benign_kernel(cfg, "bitcoin-miner")

    def test_all_registered_workloads_run(self, cfg):
        for workload in sorted(BENIGN_WORKLOADS):
            features = benign_trace(
                cfg, workload, seed=2, observe_cycles=8_000
            )
            assert set(features) == {
                "duty", "burstiness", "transitions", "bimodality"
            }


class TestEndToEndStudy:
    def test_detector_flags_covert_and_spares_benign(self):
        report = run_detection_study(
            small_config(),
            train_seeds=(1, 2),
            test_seeds=(11, 12),
        )
        assert report.detection_rate >= 0.5
        assert report.false_positive_rate <= 0.25
        assert report.covert_total == 2

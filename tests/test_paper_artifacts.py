"""Statistical acceptance tests for every small-scale paper artifact.

Each test pulls its artifact's evaluated seed sweep through the
``artifact_run`` fixture (see ``tests/plugin.py``) and asserts the full
verdict: every declared expectation holds AND the committed golden
snapshot shows no statistical drift.  On failure the assertion message
is the run's report, naming the offending expectation or metric.

These are the slowest tier-1 tests (a few seconds per artifact, cached
across runs via ``.repro_cache``).  Run just this tier with::

    pytest -q -m paper_artifact --tb=line
"""

import pytest

from repro.testing import ARTIFACTS, artifacts_for_scale
from tests.plugin import paper_artifact


@paper_artifact("fig2")
def test_fig2_tpc_colocation(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("fig5a")
def test_fig5a_read_write_contention(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("fig7_8")
def test_fig7_8_mux_sharing_slope(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("fig10a")
def test_fig10a_bandwidth_error_tradeoff(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("fig14")
def test_fig14_multilevel_staircase(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("fig15")
def test_fig15_arbitration_defense(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("table2")
def test_table2_channel_summary(artifact_run):
    assert artifact_run.passed, artifact_run.report()


@paper_artifact("linkchan")
def test_linkchan_link_channel(artifact_run):
    assert artifact_run.passed, artifact_run.report()


def test_every_small_artifact_has_a_marker_test():
    """Adding a small-scale artifact without a test here should fail."""
    covered = {
        "fig2", "fig5a", "fig7_8", "fig10a", "fig14", "fig15", "table2",
        "linkchan",
    }
    registered = {a.id for a in artifacts_for_scale("small")}
    assert registered == covered, (
        f"small-scale artifacts {sorted(registered - covered)} have no "
        "@paper_artifact test (or a test references a removed artifact: "
        f"{sorted(covered - registered)})"
    )


def test_registry_expectation_ids_are_namespaced_and_unique():
    seen = set()
    for artifact in ARTIFACTS.values():
        for exp in artifact.expectations:
            assert exp.id.startswith(artifact.id + "."), exp.id
            assert exp.id not in seen, f"duplicate expectation {exp.id}"
            seen.add(exp.id)


def test_artifact_run_fixture_requires_marker(request):
    with pytest.raises(Exception):
        request.getfixturevalue("artifact_run")

"""Tests for the contention characterization sweeps (Figures 5, 8, 11)."""

import pytest

from repro.config import medium_config, small_config
from repro.reveng.contention import (
    gpc_sharing_sweep,
    mux_sharing_sweep,
    rw_contention_profile,
)


class TestRwProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        return rw_contention_profile(medium_config(timing_noise=0), ops=6)

    def test_tpc_write_contention_doubles(self, profile):
        assert profile.tpc["write"] == pytest.approx(2.0, rel=0.15)

    def test_tpc_read_contention_minimal(self, profile):
        assert profile.tpc["read"] < 1.3

    def test_gpc_write_degradation_small(self, profile):
        # Writes are throttled at the TPC channel before the GPC mux
        # (Figure 5b): even the full GPC costs little.
        assert profile.gpc["write"][-1] < 1.35

    def test_gpc_read_degrades_with_more_tpcs(self, profile):
        series = profile.gpc["read"]
        assert series[0] == pytest.approx(1.0, rel=0.05)
        assert series[-1] > 1.25
        assert series[-1] > series[1]

    def test_single_tpc_is_baseline(self, profile):
        assert profile.gpc["write"][0] == pytest.approx(1.0, rel=0.05)


class TestMuxSharingSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return mux_sharing_sweep(
            small_config(timing_noise=0),
            fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
            ops=10,
        )

    def test_sharing_sm_slope_near_one(self, sweep):
        assert sweep.slope("SM1") == pytest.approx(1.0, abs=0.2)

    def test_non_sharing_sm_flat(self, sweep):
        label = [k for k in sweep.series if k != "SM1"][0]
        assert abs(sweep.slope(label)) < 0.05

    def test_sharing_series_monotonic(self, sweep):
        series = sweep.series["SM1"]
        assert all(b >= a - 0.02 for a, b in zip(series, series[1:]))

    def test_full_contention_doubles_time(self, sweep):
        assert sweep.series["SM1"][-1] == pytest.approx(2.0, rel=0.15)


class TestGpcSharingSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return gpc_sharing_sweep(
            medium_config(timing_noise=0),
            fractions=(0.0, 0.5, 1.0),
            ops=5,
        )

    def test_same_gpc_leaks(self, sweep):
        assert sweep.slope("same-gpc") > 0.1

    def test_different_gpc_does_not_leak(self, sweep):
        assert abs(sweep.slope("different-gpc")) < 0.05

    def test_gpc_slope_smaller_than_tpc_slope(self, sweep):
        """The GPC speedup dampens the leakage (Figure 11 vs Figure 8)."""
        tpc = mux_sharing_sweep(
            small_config(timing_noise=0), fractions=(0.0, 0.5, 1.0), ops=8
        )
        assert sweep.slope("same-gpc") < tpc.slope("SM1")

"""Unit tests for the concentrator mux — the covert channel's substrate."""

import pytest

from repro.noc.arbiter import RoundRobin, make_policy
from repro.noc.buffer import PacketQueue
from repro.noc.mux import Mux
from repro.noc.packet import Packet, READ, WRITE


def packet(flits=1, kind=READ, address=0):
    return Packet(kind=kind, address=address, flits=flits, src_sm=0, slice_id=0)


def build(num_inputs=2, width=1, out_capacity=1000, in_capacity=64):
    inputs = [PacketQueue(f"in{i}", in_capacity) for i in range(num_inputs)]
    output = PacketQueue("out", out_capacity)
    mux = Mux("m", inputs, output, width, RoundRobin(num_inputs))
    return mux, inputs, output


class TestThroughput:
    def test_width_limits_flits_per_cycle(self):
        mux, inputs, output = build(width=2)
        for _ in range(10):
            inputs[0].push(packet(flits=1))
        mux.tick(0)
        assert len(output) == 2

    def test_multi_flit_packet_takes_multiple_cycles(self):
        mux, inputs, output = build(width=1)
        inputs[0].push(packet(flits=4))
        for cycle in range(3):
            mux.tick(cycle)
            assert len(output) == 0
        mux.tick(3)
        assert len(output) == 1

    def test_wide_mux_moves_multi_flit_packet_in_one_cycle(self):
        mux, inputs, output = build(width=4)
        inputs[0].push(packet(flits=4))
        mux.tick(0)
        assert len(output) == 1

    def test_oversubscription_halves_per_input_throughput(self):
        """The 2:1 concentration that makes the TPC channel leak."""
        mux, inputs, output = build(width=1, in_capacity=512)
        for _ in range(40):
            inputs[0].push(packet())
            inputs[1].push(packet())
        for cycle in range(40):
            mux.tick(cycle)
        assert 40 - len(inputs[0]) == 20
        assert 40 - len(inputs[1]) == 20


class TestBackpressure:
    def test_full_output_blocks_transmission(self):
        mux, inputs, output = build(out_capacity=2)
        inputs[0].push(packet(flits=2))
        inputs[0].push(packet(flits=2))
        mux.tick(0)
        mux.tick(1)
        assert len(output) == 1
        assert len(inputs[0]) == 1  # no room for the second packet

    def test_drain_resumes_after_pop(self):
        mux, inputs, output = build(out_capacity=2)
        inputs[0].push(packet(flits=2))
        inputs[0].push(packet(flits=2))
        for cycle in range(2):
            mux.tick(cycle)
        output.pop()
        for cycle in range(2, 4):
            mux.tick(cycle)
        assert len(output) == 1

    def test_large_packet_never_starts_without_room(self):
        mux, inputs, output = build(out_capacity=3)
        inputs[0].push(packet(flits=4))
        for cycle in range(10):
            mux.tick(cycle)
        assert len(output) == 0
        assert len(inputs[0]) == 1

    def test_blocked_big_packet_does_not_stop_other_input(self):
        # Output has room for the small packet but not the big one.
        mux, inputs, output = build(out_capacity=2)
        inputs[0].push(packet(flits=4))
        inputs[1].push(packet(flits=1))
        mux.tick(0)
        assert len(output) == 1
        assert output.head().flits == 1


class TestReset:
    def test_reset_clears_partial_transmission(self):
        mux, inputs, output = build(width=1)
        inputs[0].push(packet(flits=4))
        mux.tick(0)  # one flit in flight
        mux.reset()
        assert not inputs[0]
        assert mux._progress == [0, 0]
        assert mux._reserved == [False, False]

    def test_reserved_space_released_logically_on_reset(self):
        mux, inputs, output = build(out_capacity=8)
        inputs[0].push(packet(flits=4))
        mux.tick(0)
        mux.reset()
        output.clear()
        assert output.free_flits == 8

"""Tests for the analysis helpers (figure builders and tables)."""

import pytest

from repro.config import small_config
from repro.analysis.figures import (
    fig9_latency_trace,
    fig10_panel,
    fig14_multilevel_trace,
    table2_summary,
)
from repro.analysis.tables import format_series, format_table


class TestTables:
    def test_format_table_aligns_columns(self):
        text = format_table(
            ["name", "value"], [["short", 1.0], ["much-longer", 12.5]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) >= len("much-longer") for line in lines[2:])

    def test_format_table_floats_rounded(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_format_series(self):
        text = format_series([1, 2], [0.1, 0.2], "iter", "error")
        assert "iter" in text and "error" in text
        assert len(text.splitlines()) == 4


class TestFig9:
    def test_with_sync_keeps_contrast(self):
        bits, trace = fig9_latency_trace(
            small_config(), with_sync=True, num_bits=16
        )
        ones = [v for v, b in zip(trace, bits) if b]
        zeros = [v for v, b in zip(trace, bits) if not b]
        assert sum(ones) / len(ones) > 1.1 * sum(zeros) / len(zeros)

    def test_without_sync_drifts(self):
        """Figure 9a: without the periodic resync the latency pattern
        degenerates — later '1' slots lose their elevation."""
        bits, trace = fig9_latency_trace(
            small_config(), with_sync=False, num_bits=24
        )
        ones = [v for v, b in zip(trace, bits) if b]
        early = ones[: len(ones) // 3]
        late = ones[-len(ones) // 3 :]
        assert min(late) < max(early)  # degradation visible

    def test_trace_lengths_match(self):
        bits, trace = fig9_latency_trace(
            small_config(), with_sync=True, num_bits=10
        )
        assert len(bits) == len(trace) == 10


class TestFig10Panel:
    def test_tpc_panel_shapes(self):
        series = fig10_panel(
            small_config(), "tpc", iterations=(1, 3, 5), bits_per_channel=8
        )
        rates = [p.bandwidth_kbps for p in series.points]
        errors = [p.error_rate for p in series.points]
        assert rates[0] > rates[-1]          # bandwidth falls
        assert errors[-1] <= max(errors)     # error does not grow
        assert errors[-1] <= 0.1

    def test_multi_tpc_panel_scales_bandwidth(self):
        single = fig10_panel(
            small_config(), "tpc", iterations=(4,), bits_per_channel=8
        )
        multi = fig10_panel(
            small_config(), "multi-tpc", iterations=(4,), bits_per_channel=8
        )
        assert (
            multi.points[0].bandwidth_kbps
            > 2 * single.points[0].bandwidth_kbps
        )

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError):
            fig10_panel(small_config(), "warp")


class TestFig14:
    def test_staircase_pattern(self):
        pattern, trace = fig14_multilevel_trace(small_config(), repeats=4)
        by_symbol = {}
        for symbol, value in zip(pattern, trace):
            by_symbol.setdefault(symbol, []).append(value)
        means = [
            sum(by_symbol[s]) / len(by_symbol[s]) for s in sorted(by_symbol)
        ]
        assert means == sorted(means)


class TestTable2:
    def test_rows_for_all_four_channels(self):
        rows = table2_summary(small_config(), bits_per_channel=6)
        assert len(rows) == 4
        assert all(row.parallel == "Parallel" for row in rows)
        assert all(row.locality == "Local" for row in rows)
        assert all(row.directness == "Direct" for row in rows)

    def test_multi_channel_rows_have_higher_bandwidth(self):
        rows = table2_summary(small_config(), bits_per_channel=6)
        by_name = {row.channel: row for row in rows}
        assert (
            by_name["GPU TPC Channel (all TPCs)"].bandwidth_mbps
            > by_name["GPU TPC Channel"].bandwidth_mbps
        )


class TestFigureDataStructures:
    """The figure builders return plain data (no plotting) — assert the
    structures downstream consumers (tables, golden harness) rely on."""

    def test_fig10_series_rows_mirror_points(self):
        from repro.analysis.figures import BandwidthErrorPoint, Fig10Series

        series = Fig10Series(
            label="tpc",
            points=[
                BandwidthErrorPoint(1, 800.0, 0.0),
                BandwidthErrorPoint(2, 650.0, 0.01),
            ],
        )
        assert series.rows() == [(1, 800.0, 0.0), (2, 650.0, 0.01)]

    def test_fig10_panel_point_fields(self):
        series = fig10_panel(
            small_config(), "tpc", iterations=(1, 2), bits_per_channel=6
        )
        assert series.label
        assert [p.iterations for p in series.points] == [1, 2]
        for point in series.points:
            assert point.bandwidth_kbps > 0
            assert 0.0 <= point.error_rate <= 1.0

    def test_fig10_panel_is_deterministic_for_a_seed(self):
        a = fig10_panel(
            small_config(), "tpc", iterations=(2,), bits_per_channel=6,
            seed=1234,
        )
        b = fig10_panel(
            small_config(), "tpc", iterations=(2,), bits_per_channel=6,
            seed=1234,
        )
        assert a.rows() == b.rows()

    def test_fig14_pattern_is_level_cycle(self):
        pattern, trace = fig14_multilevel_trace(small_config(), repeats=2)
        assert pattern == [0, 1, 0, 2, 0, 3] * 2
        assert len(trace) == len(pattern)
        assert all(isinstance(v, (int, float)) for v in trace)

    def test_table2_row_fields(self):
        rows = table2_summary(small_config(), bits_per_channel=4)
        for row in rows:
            assert isinstance(row.channel, str)
            assert 0.0 <= row.error_rate <= 1.0
            assert row.bandwidth_mbps > 0


class TestTableEdgeCases:
    def test_format_table_no_rows_renders_header_only(self):
        text = format_table(["a", "bb"], [])
        lines = text.splitlines()
        assert lines == ["a  bb", "-  --"]

    def test_format_table_mixed_types(self):
        text = format_table(["k", "v"], [["x", 1], ["y", None]])
        assert "None" in text and "x" in text

    def test_format_series_empty(self):
        text = format_series([], [], "x", "y")
        assert len(text.splitlines()) == 2

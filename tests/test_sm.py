"""Unit tests for the SM core: warp programs, LSU, credits, L1 path."""

import pytest

from repro.config import small_config
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.warp import (
    MemOp,
    ReadClock,
    WaitClockMask,
    WaitCycles,
    WaitUntilClock,
    READ,
    WRITE,
)
from repro.gpu.coalescer import lane_addresses_uncoalesced

LINE = 128


def run_program(program_factory, config=None, preload=4096, l1_enabled=False):
    """Run a single-warp kernel on SM0 and return the device."""
    config = config or small_config(timing_noise=0)
    device = GpuDevice(config, l1_enabled=l1_enabled)
    if preload:
        device.preload_region(0, preload)
    kernel = Kernel(program_factory, num_blocks=1, name="t")
    device.run_kernels([kernel])
    return device


class TestMemOps:
    def test_read_latency_includes_l2_pipeline(self):
        observed = []

        def program(ctx):
            latency = yield MemOp(READ, [0])
            observed.append(latency)

        config = small_config(timing_noise=0)
        run_program(program, config)
        assert observed[0] >= config.l2_latency

    def test_read_latency_reasonable_upper_bound(self):
        observed = []

        def program(ctx):
            observed.append((yield MemOp(READ, [0])))

        config = small_config(timing_noise=0)
        run_program(program, config)
        assert observed[0] < config.l2_latency + 100

    def test_posted_write_retires_fast(self):
        observed = []

        def program(ctx):
            observed.append((yield MemOp(WRITE, [0])))

        config = small_config(timing_noise=0)
        run_program(program, config)
        # A posted store retires at issue, long before the L2 round trip.
        assert observed[0] < config.l2_latency

    def test_waited_write_takes_round_trip(self):
        observed = []

        def program(ctx):
            observed.append(
                (yield MemOp(WRITE, [0], wait_for_completion=True))
            )

        config = small_config(timing_noise=0, write_reply_flits=1)
        run_program(program, config)
        assert observed[0] >= config.l2_latency

    def test_uncoalesced_op_slower_than_single(self):
        observed = []

        def program(ctx):
            single = yield MemOp(READ, [0])
            wide = yield MemOp(
                READ, lane_addresses_uncoalesced(0, LINE, lanes=32)
            )
            observed.extend([single, wide])

        run_program(program, preload=32 * LINE)
        assert observed[1] > observed[0]

    def test_bad_kind_rejected(self):
        def program(ctx):
            yield MemOp("erase", [0])

        with pytest.raises(ValueError):
            run_program(program)

    def test_unknown_action_rejected(self):
        def program(ctx):
            yield "not-an-action"

        with pytest.raises(TypeError):
            run_program(program)


class TestClockActions:
    def test_read_clock_monotonic(self):
        observed = []

        def program(ctx):
            first = yield ReadClock()
            yield WaitCycles(50)
            second = yield ReadClock()
            observed.extend([first, second])

        run_program(program, preload=0)
        assert observed[1] > observed[0]

    def test_wait_cycles_duration(self):
        observed = []

        def program(ctx):
            first = yield ReadClock()
            yield WaitCycles(200)
            second = yield ReadClock()
            observed.append(second - first)

        config = small_config(timing_noise=0)
        run_program(program, config, preload=0)
        jitter = config.clock_skew.read_jitter
        assert 200 - jitter <= observed[0] <= 200 + jitter + 4

    def test_wait_until_clock(self):
        observed = []

        def program(ctx):
            now = yield ReadClock()
            yield WaitUntilClock(now + 300)
            after = yield ReadClock()
            observed.append(after - now)

        config = small_config(timing_noise=0)
        run_program(program, config, preload=0)
        assert observed[0] >= 295

    def test_wait_clock_mask_lands_on_boundary(self):
        observed = []
        mask = (1 << 10) - 1

        def program(ctx):
            yield WaitClockMask(mask, 0)
            observed.append((yield ReadClock()))

        config = small_config(
            timing_noise=0,
            clock_skew=small_config().clock_skew.__class__(
                gpc_base_min=1000, gpc_base_max=1001, tpc_jitter=0,
                sm_jitter=0, read_jitter=0,
            ),
        )
        run_program(program, config, preload=0)
        # The observed clock should sit just past a mask boundary (the
        # ReadClock resumes one cycle after the wake).
        assert observed[0] & mask <= 2

    def test_non_contiguous_mask_rejected(self):
        def program(ctx):
            yield WaitClockMask(0b1010, 0)

        with pytest.raises(ValueError):
            run_program(program, preload=0)


class TestCreditsAndScheduling:
    def test_mshr_limit_respected(self):
        config = small_config(timing_noise=0, sm_mshrs=4)
        device = GpuDevice(config)
        device.preload_region(0, 64 * LINE)
        max_outstanding = []

        def program(ctx):
            yield MemOp(READ, lane_addresses_uncoalesced(0, LINE, lanes=16))

        kernel = Kernel(program, num_blocks=1, name="t")
        device.launch(kernel)
        for _ in range(2000):
            device.engine.step()
            outstanding = config.sm_mshrs - device.sms[0]._read_credits
            max_outstanding.append(outstanding)
            if kernel.done:
                break
        assert max(max_outstanding) <= 4

    def test_write_credits_return(self):
        config = small_config(timing_noise=0)
        device = GpuDevice(config)
        device.preload_region(0, 64 * LINE)

        def program(ctx):
            for _ in range(4):
                yield MemOp(
                    WRITE, lane_addresses_uncoalesced(0, LINE, lanes=8)
                )

        kernel = Kernel(program, num_blocks=1, name="t")
        device.launch(kernel)
        device.run()
        device.engine.step(600)  # drain the posted writes
        assert device.sms[0]._write_credits == config.sm_write_buffer

    def test_multiple_warps_share_lsu(self):
        config = small_config(timing_noise=0)
        device = GpuDevice(config)
        device.preload_region(0, 64 * LINE)
        done_counter = []

        def program(ctx):
            yield MemOp(READ, [ctx.warp_id * LINE])
            done_counter.append(ctx.warp_id)

        kernel = Kernel(program, num_blocks=1, warps_per_block=4, name="t")
        device.run_kernels([kernel])
        assert sorted(done_counter) == [0, 1, 2, 3]

    def test_warp_occupancy_limit_enforced(self):
        config = small_config(max_warps_per_sm=2)
        device = GpuDevice(config)
        sm = device.sms[0]
        from repro.gpu.warp import WarpContext

        def program(ctx):
            yield WaitCycles(1)

        for index in range(2):
            context = WarpContext(0, index, 0, 32)
            sm.add_warp(context, program(context))
        with pytest.raises(RuntimeError):
            context = WarpContext(0, 2, 0, 32)
            sm.add_warp(context, program(context))

    def test_smid_property(self, small_device):
        assert small_device.sms[3].smid == 3


class TestL1Path:
    def test_l1_hit_avoids_interconnect(self):
        config = small_config(timing_noise=0)
        device = GpuDevice(config, l1_enabled=True)
        device.preload_region(0, 4 * LINE)
        latencies = []

        def program(ctx):
            first = yield MemOp(READ, [0])
            second = yield MemOp(READ, [0])
            latencies.extend([first, second])

        kernel = Kernel(program, num_blocks=1, name="t")
        device.run_kernels([kernel])
        assert latencies[0] >= config.l2_latency
        assert latencies[1] <= config.l1_hit_latency + 4
        assert device.stats.counters.get("sm0.l1_hits", 0) == 1

    def test_l1_bypass_always_travels(self):
        config = small_config(timing_noise=0)
        device = GpuDevice(config, l1_enabled=False)
        device.preload_region(0, 4 * LINE)
        latencies = []

        def program(ctx):
            for _ in range(2):
                latencies.append((yield MemOp(READ, [0])))

        kernel = Kernel(program, num_blocks=1, name="t")
        device.run_kernels([kernel])
        assert all(lat >= config.l2_latency for lat in latencies)


class TestTimingNoise:
    def test_noise_zero_is_deterministic(self):
        def measure():
            observed = []

            def program(ctx):
                for _ in range(5):
                    observed.append((yield MemOp(READ, [0])))

            run_program(program)
            return observed

        assert measure() == measure()

    def test_noise_perturbs_latency_within_bound(self):
        noise = 50
        config = small_config(timing_noise=noise)
        observed = []

        def program(ctx):
            for op in range(20):
                observed.append((yield MemOp(READ, [0])))

        run_program(program, config)
        base = min(observed)
        assert max(observed) <= base + noise + 16
        assert max(observed) > base  # noise actually fired

"""Unit tests for the cycle engine."""

import pytest

from repro.sim.engine import Component, Engine


class Recorder(Component):
    def __init__(self, log, tag):
        self.log = log
        self.tag = tag
        self.reset_calls = 0

    def tick(self, cycle):
        self.log.append((self.tag, cycle))

    def reset(self):
        self.reset_calls += 1


class PostRecorder(Recorder):
    def post_tick(self, cycle):
        self.log.append((self.tag + "-post", cycle))


class TestEngine:
    def test_ticks_in_registration_order(self):
        log = []
        engine = Engine([Recorder(log, "a"), Recorder(log, "b")])
        engine.step()
        assert log == [("a", 0), ("b", 0)]

    def test_step_advances_cycle_counter(self):
        engine = Engine()
        assert engine.step(5) == 5
        assert engine.cycle == 5
        engine.step()
        assert engine.cycle == 6

    def test_post_tick_runs_after_all_ticks(self):
        log = []
        engine = Engine([PostRecorder(log, "a"), Recorder(log, "b")])
        engine.step()
        assert log == [("a", 0), ("b", 0), ("a-post", 0)]

    def test_post_tick_skipped_for_plain_components(self):
        # Components that don't override post_tick are not in the post list.
        engine = Engine()
        plain = Recorder([], "x")
        posty = PostRecorder([], "y")
        engine.register(plain)
        engine.register(posty)
        assert plain not in engine._post_components
        assert posty in engine._post_components

    def test_run_until_stops_when_condition_met(self):
        engine = Engine()
        final = engine.run_until(lambda: engine.cycle >= 10)
        assert final >= 10

    def test_run_until_respects_check_every(self):
        engine = Engine()
        engine.run_until(lambda: engine.cycle >= 5, check_every=4)
        assert engine.cycle in (8, 4 + 4)

    def test_run_until_times_out(self):
        engine = Engine()
        with pytest.raises(TimeoutError):
            engine.run_until(lambda: False, max_cycles=100)

    def test_reset_zeros_cycle_and_resets_components(self):
        log = []
        component = Recorder(log, "a")
        engine = Engine([component])
        engine.step(3)
        engine.reset()
        assert engine.cycle == 0
        assert component.reset_calls == 1

    def test_register_returns_component(self):
        engine = Engine()
        component = Recorder([], "a")
        assert engine.register(component) is component
        assert component in engine.components

    def test_register_all(self):
        engine = Engine()
        components = [Recorder([], str(i)) for i in range(3)]
        engine.register_all(components)
        assert engine.components == components

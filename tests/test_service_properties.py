"""Property-based sweep-service tests: exactly-once under interleaving.

Seeded ``random`` only (no extra dependencies), following the
``test_property_accounting.py`` idiom: each seed draws a random set of
overlapping requests — shuffled samples (with repeats) from a small
token pool — and fires them concurrently at one :class:`SweepService`
with randomized shard count and submission stagger.  The invariants
checked against the workload's side-effect ledger:

1. every unique job key executes **exactly once** (one ledger line per
   token used, no matter how many requests named it);
2. every subscriber of a key receives an identical result payload;
3. the scheduler's books balance: ``dispatched`` equals the number of
   unique keys, and ``dispatched + attached + cache_hit`` equals the
   number of job slots submitted.
"""

import random

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.runner import ResultCache, SimJob, serve_requests

PROBE_FN = "repro.runner.workloads.service_probe_point"


def _ledger_count(ledger, token):
    path = ledger / f"{token}.log"
    if not path.exists():
        return 0
    return len(path.read_text().splitlines())


@pytest.mark.parametrize("seed", range(6))
def test_overlapping_requests_execute_each_key_exactly_once(
    seed, quiet_cfg, tmp_path
):
    rng = random.Random(0xC0FFEE + seed)
    tokens = [f"tok{i}" for i in range(rng.randint(3, 8))]
    num_requests = rng.randint(2, 5)
    requests = []
    for _ in range(num_requests):
        picks = [
            rng.choice(tokens)
            for _ in range(rng.randint(1, 2 * len(tokens)))
        ]
        rng.shuffle(picks)
        requests.append(
            [
                SimJob(
                    PROBE_FN,
                    quiet_cfg,
                    {
                        # Same token -> same params -> same job key.
                        "token": token,
                        "value": 1.0,
                        "ledger_dir": str(tmp_path / "ledger"),
                    },
                )
                for token in picks
            ]
        )

    per_request, manifest = serve_requests(
        requests,
        cache=ResultCache(tmp_path / "cache", metrics=MetricsRegistry()),
        execution="inline",
        shards=rng.randint(1, 4),
        metrics=MetricsRegistry(),
        stagger_s=0.005,
    )

    used = {job.params["token"] for jobs in requests for job in jobs}
    # (1) exactly-once execution, measured by the workload's own ledger.
    for token in used:
        assert _ledger_count(tmp_path / "ledger", token) == 1, token
    for token in set(tokens) - used:
        assert _ledger_count(tmp_path / "ledger", token) == 0, token

    # (2) every subscriber of a token sees the identical payload.
    by_token = {}
    for jobs, results in zip(requests, per_request):
        assert len(results) == len(jobs)
        for job, result in zip(jobs, results):
            token = job.params["token"]
            assert result["token"] == token
            canonical = by_token.setdefault(token, result)
            assert result == canonical

    # (3) the books balance.
    total_slots = sum(len(jobs) for jobs in requests)
    assert manifest["dispatched"] == len(used)
    assert (
        manifest["dispatched"]
        + manifest["attached"]
        + manifest["cache_hit"]
        == total_slots
    )
    assert manifest["completed"] == len(used)
    assert manifest["failed"] == 0
    assert manifest["requests"] == num_requests

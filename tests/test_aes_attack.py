"""Tests for the AES last-round key-recovery side channel."""

import pytest
from hypothesis import given, strategies as st

from repro.config import small_config
from repro.channel.aes_attack import (
    ENTRIES_PER_LINE,
    INV_SBOX,
    distinct_lines,
    run_aes_key_recovery,
    table_line,
)


class TestTableModel:
    def test_inv_sbox_is_a_permutation(self):
        assert sorted(INV_SBOX) == list(range(256))

    def test_table_line_geometry(self):
        assert table_line(0) == 0
        assert table_line(ENTRIES_PER_LINE - 1) == 0
        assert table_line(ENTRIES_PER_LINE) == 1
        assert table_line(255) == 256 // ENTRIES_PER_LINE - 1

    def test_distinct_lines_bounds(self):
        assert distinct_lines([0] * 32, key_byte=0) == 1
        full = distinct_lines(list(range(256))[:32], key_byte=0)
        assert 1 <= full <= 8

    def test_counts_are_key_dependent(self):
        """The inverse S-box makes distinct-line counts key dependent —
        without it (pure XOR) they would be key-invariant and the attack
        impossible."""
        cts = [3, 17, 94, 200, 121, 45, 6, 250] * 4
        counts = {
            distinct_lines(cts, key) for key in (0x00, 0x3C, 0x7F, 0xAB)
        }
        assert len(counts) > 1

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=32),
           st.integers(0, 255))
    def test_distinct_lines_in_range(self, cts, key):
        count = distinct_lines(cts, key)
        assert 1 <= count <= min(len(set(cts)), 8)


class TestKeyRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        return run_aes_key_recovery(
            small_config(timing_noise=0), key_byte=0x3C, num_batches=24
        )

    def test_recovers_the_key_byte(self, result):
        assert result.success
        assert result.recovered_key_byte == 0x3C

    def test_true_key_correlation_is_strong(self, result):
        assert result.correlations[0x3C] > 0.9

    def test_true_key_ranked_first(self, result):
        assert result.rank_of_true_key() == 1

    def test_latency_tracks_line_count(self, result):
        """The physical leak: more distinct lines -> slower spy probes."""
        from repro.channel.aes_attack import _pearson

        predicted = [
            float(distinct_lines(batch, 0x3C)) for batch in result.batches
        ]
        assert _pearson(predicted, result.measured_latencies) > 0.9

    def test_recovery_with_noise_narrows_the_search(self):
        """Under the timing-noise floor, this trace budget already puts
        the true key byte in the top quartile with strong correlation —
        real attacks simply gather more traces to finish the job."""
        noisy = run_aes_key_recovery(
            small_config(), key_byte=0xA7, num_batches=32, seed=9
        )
        assert noisy.correlations[0xA7] > 0.5
        assert noisy.rank_of_true_key() <= 64

    def test_invalid_key_rejected(self):
        with pytest.raises(ValueError):
            run_aes_key_recovery(small_config(), key_byte=300)


class TestColocationDetection:
    def test_detects_tpc_sibling_without_smid(self):
        from repro.reveng import detect_colocation_by_contention

        cfg = small_config()
        assert detect_colocation_by_contention(cfg, 0, 1)
        assert not detect_colocation_by_contention(cfg, 0, 4)

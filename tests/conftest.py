"""Shared fixtures: scaled-down GPU configs and device factories.

The suite must be bit-reproducible run to run: every simulation seed
flows from an explicit ``GpuConfig.seed`` (default 2021), and the
property-based tests below load a derandomised Hypothesis profile so
example generation is a pure function of the test source — no hidden
RNG state, no flaky shrink targets in CI.
"""

import pytest

from repro.config import GpuConfig, VOLTA_V100, medium_config, small_config
from repro.gpu.device import GpuDevice

try:
    from hypothesis import settings

    settings.register_profile(
        "repro-deterministic", derandomize=True, deadline=None
    )
    settings.load_profile("repro-deterministic")
except ImportError:  # pragma: no cover - hypothesis is optional
    pass


@pytest.fixture
def small_cfg() -> GpuConfig:
    return small_config()


@pytest.fixture
def medium_cfg() -> GpuConfig:
    return medium_config()


@pytest.fixture
def volta_cfg() -> GpuConfig:
    return VOLTA_V100


@pytest.fixture
def quiet_cfg() -> GpuConfig:
    """Small config without timing noise (deterministic latencies)."""
    return small_config(timing_noise=0)


@pytest.fixture
def small_device(small_cfg) -> GpuDevice:
    return GpuDevice(small_cfg)


@pytest.fixture
def quiet_device(quiet_cfg) -> GpuDevice:
    return GpuDevice(quiet_cfg)

"""Shared fixtures: scaled-down GPU configs and device factories."""

import pytest

from repro.config import GpuConfig, VOLTA_V100, medium_config, small_config
from repro.gpu.device import GpuDevice


@pytest.fixture
def small_cfg() -> GpuConfig:
    return small_config()


@pytest.fixture
def medium_cfg() -> GpuConfig:
    return medium_config()


@pytest.fixture
def volta_cfg() -> GpuConfig:
    return VOLTA_V100


@pytest.fixture
def quiet_cfg() -> GpuConfig:
    """Small config without timing noise (deterministic latencies)."""
    return small_config(timing_noise=0)


@pytest.fixture
def small_device(small_cfg) -> GpuDevice:
    return GpuDevice(small_cfg)


@pytest.fixture
def quiet_device(quiet_cfg) -> GpuDevice:
    return GpuDevice(quiet_cfg)

"""Unit and property tests for the arbitration policies (Sections 2.3, 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.arbiter import (
    AgeBased,
    CoarseRoundRobin,
    FixedPriority,
    RandomArbiter,
    RoundRobin,
    StrictRoundRobin,
    make_policy,
)
from repro.noc.buffer import PacketQueue
from repro.noc.mux import Mux
from repro.noc.packet import Packet, READ, WRITE


def packet(flits=1, group=0, birth=0):
    return Packet(
        kind=READ, address=0, flits=flits, src_sm=0, slice_id=0,
        group_id=group, birth_cycle=birth,
    )


def build_mux(policy, num_inputs=2, width=1, capacity=64):
    inputs = [PacketQueue(f"in{i}", capacity) for i in range(num_inputs)]
    output = PacketQueue("out", 10_000)
    mux = Mux("mux", inputs, output, width=width, policy=policy)
    return mux, inputs, output


class TestRoundRobin:
    def test_alternates_between_busy_inputs(self):
        mux, inputs, output = build_mux(RoundRobin(2))
        for _ in range(4):
            inputs[0].push(packet())
            inputs[1].push(packet())
        for cycle in range(8):
            mux.tick(cycle)
        sources = []
        # Reconstruct grant order from output order via packet identity.
        while output:
            sources.append(output.pop().uid)
        assert len(sources) == 8

    def test_lone_requester_gets_full_bandwidth(self):
        mux, inputs, output = build_mux(RoundRobin(2))
        for _ in range(5):
            inputs[0].push(packet())
        for cycle in range(5):
            mux.tick(cycle)
        assert len(output) == 5  # nothing wasted on the idle input

    def test_fair_split_under_contention(self):
        mux, inputs, output = build_mux(RoundRobin(2), capacity=1024)
        for _ in range(50):
            inputs[0].push(packet())
            inputs[1].push(packet())
        for cycle in range(60):
            mux.tick(cycle)
        # 60 cycles of width 1: each input should have moved ~30 packets.
        assert 50 - len(inputs[0]) == pytest.approx(30, abs=1)
        assert 50 - len(inputs[1]) == pytest.approx(30, abs=1)

    def test_multiflit_packets_not_interleaved(self):
        mux, inputs, output = build_mux(RoundRobin(2))
        inputs[0].push(packet(flits=3))
        inputs[1].push(packet(flits=1))
        for cycle in range(4):
            mux.tick(cycle)
        assert len(output) == 2  # both complete; no deadlock from locking


class TestCoarseRoundRobin:
    def test_holds_grant_within_group(self):
        mux, inputs, output = build_mux(CoarseRoundRobin(2), capacity=64)
        # Input 0 has a 3-packet warp group; input 1 has singles.
        for _ in range(3):
            inputs[0].push(packet(group=7))
        for i in range(3):
            inputs[1].push(packet(group=100 + i))
        order = []
        for cycle in range(6):
            before = len(output)
            mux.tick(cycle)
            for _ in range(len(output) - before):
                pass
        # All six packets eventually cross.
        assert len(output) == 6

    def test_bandwidth_share_matches_rr(self):
        """CRR changes arbitration granularity, not bandwidth — the reason
        it fails as a countermeasure (Figure 15)."""
        for policy_cls in (RoundRobin, CoarseRoundRobin):
            mux, inputs, output = build_mux(policy_cls(2), capacity=2048)
            for i in range(40):
                inputs[0].push(packet(group=i // 4))
                inputs[1].push(packet(group=1000 + i // 4))
            for cycle in range(40):
                mux.tick(cycle)
            moved_0 = 40 - len(inputs[0])
            moved_1 = 40 - len(inputs[1])
            assert moved_0 == pytest.approx(20, abs=4)
            assert moved_1 == pytest.approx(20, abs=4)


class TestStrictRoundRobin:
    def test_slot_ownership_by_cycle(self):
        policy = StrictRoundRobin(2)
        assert policy.allowed_inputs(0) == (0,)
        assert policy.allowed_inputs(1) == (1,)
        assert policy.allowed_inputs(2) == (0,)

    def test_idle_slot_bandwidth_is_wasted(self):
        mux, inputs, output = build_mux(StrictRoundRobin(2))
        for _ in range(10):
            inputs[0].push(packet())
        for cycle in range(10):
            mux.tick(cycle)
        # Input 0 only owns even cycles: 5 packets in 10 cycles.
        assert len(output) == 5

    def test_service_rate_independent_of_other_input(self):
        """The isolation property that kills the covert channel."""
        moved = {}
        for other_busy in (False, True):
            mux, inputs, output = build_mux(StrictRoundRobin(2), capacity=512)
            for _ in range(30):
                inputs[0].push(packet())
                if other_busy:
                    inputs[1].push(packet())
            for cycle in range(30):
                mux.tick(cycle)
            moved[other_busy] = 30 - len(inputs[0])
        assert moved[False] == moved[True]


class TestAgeBased:
    def test_oldest_packet_wins(self):
        mux, inputs, output = build_mux(AgeBased(2))
        inputs[0].push(packet(birth=10))
        inputs[1].push(packet(birth=2))
        mux.tick(0)
        first = output.pop()
        assert first.birth_cycle == 2

    def test_does_not_isolate_inputs(self):
        """Age-based fairness does NOT remove the channel (Section 6)."""
        moved = {}
        for other_busy in (False, True):
            mux, inputs, output = build_mux(AgeBased(2), capacity=512)
            for i in range(30):
                inputs[0].push(packet(birth=i))
                if other_busy:
                    inputs[1].push(packet(birth=i))
            for cycle in range(30):
                mux.tick(cycle)
            moved[other_busy] = 30 - len(inputs[0])
        assert moved[True] < moved[False]


class TestFixedAndRandom:
    def test_fixed_priority_starves_high_index(self):
        mux, inputs, output = build_mux(FixedPriority(2), capacity=512)
        for _ in range(20):
            inputs[0].push(packet())
            inputs[1].push(packet())
        for cycle in range(10):
            mux.tick(cycle)
        assert len(inputs[0]) == 10
        assert len(inputs[1]) == 20  # fully starved

    def test_random_arbiter_deterministic_per_seed(self):
        a = RandomArbiter(4, seed=9)
        b = RandomArbiter(4, seed=9)
        candidates = [0, 1, 2, 3]
        picks_a = [a.choose(candidates, [None] * 4, c) for c in range(20)]
        picks_b = [b.choose(candidates, [None] * 4, c) for c in range(20)]
        assert picks_a == picks_b

    def test_random_arbiter_reset_replays(self):
        arbiter = RandomArbiter(3, seed=1)
        first = [arbiter.choose([0, 1, 2], [None] * 3, c) for c in range(10)]
        arbiter.reset()
        again = [arbiter.choose([0, 1, 2], [None] * 3, c) for c in range(10)]
        assert first == again


class TestFactory:
    def test_make_policy_names(self):
        for name, cls in [
            ("rr", RoundRobin),
            ("crr", CoarseRoundRobin),
            ("srr", StrictRoundRobin),
            ("age", AgeBased),
            ("fixed", FixedPriority),
            ("random", RandomArbiter),
        ]:
            assert isinstance(make_policy(name, 2), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("tdm", 2)

    def test_mux_rejects_mismatched_policy(self):
        with pytest.raises(ValueError):
            build_mux(RoundRobin(3), num_inputs=2)


class TestProperties:
    @given(
        policy_name=st.sampled_from(["rr", "crr", "srr", "age", "fixed"]),
        pattern=st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 4)), max_size=40
        ),
    )
    def test_conservation_no_loss_no_duplication(self, policy_name, pattern):
        """Whatever the policy, every pushed packet crosses exactly once."""
        mux, inputs, output = build_mux(
            make_policy(policy_name, 3), num_inputs=3, width=2,
            capacity=4096,
        )
        pushed = []
        for port, flits in pattern:
            pkt = packet(flits=flits, group=port)
            inputs[port].push(pkt)
            pushed.append(pkt.uid)
        for cycle in range(400):
            mux.tick(cycle)
        crossed = []
        while output:
            crossed.append(output.pop().uid)
        assert sorted(crossed) == sorted(pushed)

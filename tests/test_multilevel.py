"""Tests for the multi-level (2-bit) channel (Section 5, Figure 14)."""

import random

import pytest

from repro.config import small_config
from repro.channel.multilevel import DEFAULT_LEVELS, MultiLevelTpcChannel


@pytest.fixture(scope="module")
def cfg():
    return small_config()


@pytest.fixture(scope="module")
def channel(cfg):
    instance = MultiLevelTpcChannel(cfg)
    instance.calibrate_levels(repeats=6)
    return instance


def random_symbols(count, levels=4, seed=41):
    rng = random.Random(seed)
    return [rng.randrange(levels) for _ in range(count)]


class TestLevels:
    def test_level_latencies_monotonic(self, cfg):
        probe = MultiLevelTpcChannel(cfg)
        means = probe.level_means(repeats=6)
        assert means == sorted(means)
        assert means[-1] > means[0] * 1.1

    def test_calibration_produces_ordered_thresholds(self, channel):
        thresholds = channel._level_thresholds
        assert len(thresholds) == len(DEFAULT_LEVELS) - 1
        assert thresholds == sorted(thresholds)

    def test_two_bits_per_symbol(self, channel):
        assert channel.bits_per_symbol == 2.0

    def test_levels_must_start_with_silence(self, cfg):
        with pytest.raises(ValueError):
            MultiLevelTpcChannel(cfg, levels=(8, 16, 32))

    def test_at_least_two_levels(self, cfg):
        with pytest.raises(ValueError):
            MultiLevelTpcChannel(cfg, levels=(0,))


class TestTransmission:
    def test_multilevel_round_trip_moderate_error(self, channel):
        symbols = random_symbols(40)
        result = channel.transmit(symbols)
        # The paper accepts a proportionally higher error for 2x symbols.
        assert result.error_rate <= 0.3

    def test_extreme_levels_reliably_separated(self, channel):
        symbols = [0, 3] * 10
        result = channel.transmit(symbols)
        errors = sum(
            1 for s, r in zip(result.sent_symbols, result.received_symbols)
            if s != r
        )
        assert errors <= 2

    def test_raw_bandwidth_exceeds_binary_channel(self, cfg, channel):
        """The ~1.6x bandwidth gain the paper reports."""
        from repro.channel.tpc_channel import TpcCovertChannel

        binary = TpcCovertChannel(cfg, params=channel.params)
        binary.calibrate()
        bits = [s % 2 for s in range(24)]
        binary_result = binary.transmit(bits)
        multi_result = channel.transmit(random_symbols(24))
        assert (
            multi_result.bandwidth_mbps
            > 1.4 * binary_result.bandwidth_mbps
        )

    def test_symbol_range_validated(self, channel):
        with pytest.raises(ValueError):
            channel.transmit([0, 4, 1])

    def test_empty_payload_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.transmit([])

    def test_result_reports_two_bits_per_symbol(self, channel):
        result = channel.transmit([0, 1, 2, 3])
        assert result.bits_per_symbol == 2.0

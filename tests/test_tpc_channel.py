"""End-to-end tests of the TPC covert channel (Section 4.4)."""

import random

import pytest

from repro.config import small_config
from repro.channel.protocol import ChannelParams
from repro.channel.tpc_channel import TpcCovertChannel


@pytest.fixture(scope="module")
def cfg():
    return small_config()


@pytest.fixture(scope="module")
def calibrated(cfg):
    channel = TpcCovertChannel(cfg)
    channel.calibrate()
    return channel


def random_bits(count, seed=17):
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


class TestSingleChannel:
    def test_random_payload_transmits_with_low_error(self, calibrated):
        bits = random_bits(48)
        result = calibrated.transmit(bits)
        assert result.error_rate <= 0.05

    def test_contention_raises_one_slot_latency(self, calibrated):
        bits = [0, 0, 1, 1, 0, 1, 0, 0]
        result = calibrated.transmit(bits)
        series = result.measurements[0]
        ones = [v for v, b in zip(series, bits) if b]
        zeros = [v for v, b in zip(series, bits) if not b]
        assert min(ones) > max(zeros) * 0.95
        assert sum(ones) / len(ones) > sum(zeros) / len(zeros) * 1.1

    def test_bandwidth_in_expected_band(self, calibrated):
        result = calibrated.transmit(random_bits(32))
        # Single TPC channel lands in the hundreds-of-kbps to ~Mbps band
        # the paper reports for low iteration counts.
        assert 0.1 < result.bandwidth_mbps < 5.0

    def test_calibration_threshold_between_clusters(self, cfg):
        channel = TpcCovertChannel(cfg)
        threshold = channel.calibrate()
        bits = [0, 1] * 8
        result = channel.transmit(bits)
        series = result.measurements[0]
        zeros = [v for v, b in zip(series, bits) if not b]
        ones = [v for v, b in zip(series, bits) if b]
        assert max(zeros) < threshold < min(ones)

    def test_transmit_requires_payload(self, calibrated):
        with pytest.raises(ValueError):
            calibrated.transmit([])

    def test_transmit_bytes_round_trip(self, calibrated):
        result = calibrated.transmit_bytes(b"\xa5\x3c")
        expected = [1,0,1,0,0,1,0,1, 0,0,1,1,1,1,0,0]
        assert result.sent_symbols == expected
        assert result.error_rate <= 0.1

    def test_unknown_tpc_rejected(self, cfg):
        with pytest.raises(ValueError):
            TpcCovertChannel(cfg, channels=[99])

    def test_auto_calibration_on_first_transmit(self, cfg):
        channel = TpcCovertChannel(cfg)
        assert channel.params.threshold is None
        result = channel.transmit([1, 0, 1, 0])
        assert channel.params.threshold is not None
        assert result.error_rate <= 0.25


class TestIterationTradeoff:
    def test_more_iterations_lower_bandwidth(self, cfg):
        rates = []
        for iterations in (1, 3, 5):
            channel = TpcCovertChannel(
                cfg, params=ChannelParams(iterations=iterations)
            )
            channel.calibrate()
            rates.append(channel.transmit(random_bits(24)).bandwidth_mbps)
        assert rates[0] > rates[1] > rates[2]

    def test_high_iterations_are_reliable(self, cfg):
        channel = TpcCovertChannel(cfg, params=ChannelParams(iterations=5))
        channel.calibrate()
        result = channel.transmit(random_bits(40))
        assert result.error_rate <= 0.05


class TestMultiChannel:
    def test_all_channels_cover_every_tpc(self, cfg):
        channel = TpcCovertChannel.all_channels(cfg)
        assert channel.num_channels == cfg.num_tpcs

    def test_parallel_channels_multiply_bandwidth(self, cfg):
        single = TpcCovertChannel(cfg)
        single.calibrate()
        single_result = single.transmit(random_bits(16))

        multi = TpcCovertChannel.all_channels(cfg)
        multi.calibrate()
        multi_result = multi.transmit(random_bits(16 * cfg.num_tpcs))
        assert multi_result.bandwidth_mbps > 2.0 * single_result.bandwidth_mbps

    def test_multi_channel_error_stays_low(self, cfg):
        multi = TpcCovertChannel.all_channels(cfg)
        multi.calibrate()
        result = multi.transmit(random_bits(16 * cfg.num_tpcs))
        assert result.error_rate <= 0.08

    def test_payload_split_round_robin(self, cfg):
        channel = TpcCovertChannel(cfg, channels=[0, 1])
        split = channel._split_payload([1, 2, 3, 4, 5])
        assert split == [[1, 3, 5], [2, 4]]

    def test_assemble_inverts_split(self, cfg):
        channel = TpcCovertChannel(cfg, channels=[0, 1, 2])
        payload = list(range(11))
        split = channel._split_payload(payload)
        assert channel._assemble(split, len(payload)) == payload


class TestDeterminism:
    def test_same_seed_same_result(self, cfg):
        def run():
            channel = TpcCovertChannel(
                cfg, params=ChannelParams(threshold=1200.0)
            )
            return channel.transmit(random_bits(16)).received_symbols

        assert run() == run()

    def test_seed_salt_varies_noise(self, cfg):
        def run(salt):
            channel = TpcCovertChannel(
                cfg, params=ChannelParams(threshold=1200.0), seed_salt=salt
            )
            return channel.transmit(random_bits(16)).measurements[0]

        assert run(0) != run(5)

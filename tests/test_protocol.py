"""Unit tests for the channel protocol: params, addresses, decoders."""

import pytest
from hypothesis import given, strategies as st

from repro.channel.protocol import (
    REGION_OPS,
    ChannelParams,
    decode_binary,
    decode_multilevel,
    receiver_addresses,
    region_bytes,
    sender_addresses,
)
from repro.gpu.coalescer import coalesce

LINE = 128


class TestChannelParams:
    def test_slot_computed_from_iterations(self):
        params = ChannelParams(
            iterations=3, slot_base=100, slot_per_iteration=50
        )
        assert params.slot == 250

    def test_explicit_slot_overrides_formula(self):
        params = ChannelParams(slot_cycles=999, iterations=5)
        assert params.slot == 999

    def test_with_returns_modified_copy(self):
        params = ChannelParams()
        changed = params.with_(iterations=2)
        assert changed.iterations == 2
        assert params.iterations == 4

    def test_sync_mask_period_exceeds_slot(self):
        params = ChannelParams()
        assert params.sync_mask + 1 > params.slot


class TestAddressBuilders:
    def test_uncoalesced_sender_touches_full_lanes(self):
        params = ChannelParams(sender_lines=32)
        addresses = sender_addresses(params, 0, LINE, op_index=0)
        assert len(coalesce(addresses, LINE)) == 32

    def test_coalesced_sender_touches_one_line(self):
        params = ChannelParams(sender_lines=1)
        addresses = sender_addresses(params, 0, LINE, op_index=0)
        assert len(coalesce(addresses, LINE)) == 1

    def test_partial_density_levels(self):
        for lines in (8, 16):
            params = ChannelParams(sender_lines=lines)
            addresses = sender_addresses(params, 0, LINE, op_index=0)
            assert len(coalesce(addresses, LINE)) == lines

    def test_receiver_addresses_respect_receiver_lines(self):
        params = ChannelParams(receiver_lines=1)
        addresses = receiver_addresses(params, 0, LINE, op_index=0)
        assert len(coalesce(addresses, LINE)) == 1

    def test_ops_stay_inside_preloaded_region(self):
        params = ChannelParams()
        region = region_bytes(params, LINE)
        for op in range(20):
            for address in sender_addresses(params, 0, LINE, op):
                assert 0 <= address < region

    def test_region_bounded_by_region_ops(self):
        params = ChannelParams()
        assert region_bytes(params, LINE) == REGION_OPS * 32 * LINE


class TestDecoders:
    def test_binary_threshold(self):
        assert decode_binary([10, 30, 20, 5], threshold=15) == [0, 1, 1, 0]

    def test_binary_boundary_is_zero(self):
        assert decode_binary([15], threshold=15) == [0]

    def test_multilevel_staircase(self):
        thresholds = [10, 20, 30]
        values = [5, 15, 25, 35]
        assert decode_multilevel(values, thresholds) == [0, 1, 2, 3]

    def test_multilevel_empty(self):
        assert decode_multilevel([], [10]) == []

    @given(
        st.lists(st.floats(min_value=0, max_value=1000), max_size=50),
        st.floats(min_value=0, max_value=1000),
    )
    def test_binary_decode_is_pointwise_threshold(self, values, threshold):
        decoded = decode_binary(values, threshold)
        assert decoded == [1 if v > threshold else 0 for v in values]

    @given(
        st.lists(st.floats(min_value=0, max_value=100), max_size=30),
        st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=4
        ),
    )
    def test_multilevel_symbols_in_range(self, values, raw_thresholds):
        thresholds = sorted(raw_thresholds)
        decoded = decode_multilevel(values, thresholds)
        assert all(0 <= s <= len(thresholds) for s in decoded)

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=30))
    def test_multilevel_monotone_in_value(self, values):
        thresholds = [25.0, 50.0, 75.0]
        decoded = decode_multilevel(values, thresholds)
        for value, symbol in zip(values, decoded):
            for other_value, other_symbol in zip(values, decoded):
                if value < other_value:
                    assert symbol <= other_symbol

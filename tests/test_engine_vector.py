"""Vectorized batch engine: cycle-exactness, batching, and gating.

The vector strategy layers three optimisations over active-set
scheduling — struct-of-arrays queue mirrors with batched mux-bank
dispatch, lazy sole-contender packet batching, and reactive SM parking —
each of which must be *invisible* in simulated behaviour.  These tests
pin that down:

* channel fingerprints are bit-identical to ``naive`` with batching
  actually engaged (telemetry and validation off) and with it gated off
  (observers on);
* the three-way lockstep oracle and a quick three-way fuzz budget pass;
* ``engine_strategy="vector"`` without numpy raises a clear
  :class:`~repro.config.ConfigError` — never a silent fallback.
"""

import sys

import pytest

from repro.config import (
    ConfigError,
    ENGINE_STRATEGIES,
    GpuConfig,
    small_config,
)
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, READ, WRITE
from repro.sim.engine import FOREVER, create_engine

numpy = pytest.importorskip("numpy", exc_type=ImportError)

from repro.noc.buffer import PacketQueue  # noqa: E402
from repro.noc.soa import MuxBank, SoaMirror  # noqa: E402
from repro.sim.vector import VectorEngine  # noqa: E402


def _channel_fingerprint(config):
    from repro.channel import TpcCovertChannel

    channel = TpcCovertChannel(config)
    channel.calibrate()
    bits = [i % 2 for i in range(16)]
    result = channel.transmit(bits)
    return result.cycles, result.received_symbols, result.measurements


class TestBitIdentical:
    def test_batching_engaged_matches_naive(self):
        # Default small config: no telemetry, no validation — the lazy
        # sole-contender mux batching is armed on the TPC tier.
        config = small_config()
        assert not config.telemetry_enabled and not config.validate_enabled
        naive = _channel_fingerprint(config.replace(engine_strategy="naive"))
        vector = _channel_fingerprint(
            config.replace(engine_strategy="vector")
        )
        assert naive == vector

    def test_observers_on_matches_naive(self):
        # Telemetry + validation force the per-flit scalar semantics
        # (batching gated off); the sparse tick must still be exact.
        config = small_config(
            telemetry_enabled=True, validate_enabled=True
        )
        naive = _channel_fingerprint(config.replace(engine_strategy="naive"))
        vector = _channel_fingerprint(
            config.replace(engine_strategy="vector")
        )
        assert naive == vector

    @pytest.mark.parametrize("reply_voq", [False, True])
    def test_mixed_read_write_counters(self, reply_voq):
        def run(strategy):
            config = small_config(
                engine_strategy=strategy, reply_voq=reply_voq
            )
            device = GpuDevice(config)

            def reader(ctx):
                for i in range(24):
                    yield MemOp(READ, [i * 128])

            def writer(ctx):
                for i in range(24):
                    yield MemOp(WRITE, [i * 256])

            device.launch(Kernel(reader, num_blocks=3, warps_per_block=2,
                                 name="reader"))
            device.launch(Kernel(writer, num_blocks=3, warps_per_block=2,
                                 name="writer"))
            device.run()
            return device.engine.cycle, device.stats.snapshot()

        assert run("naive") == run("vector")


class TestOracleAndFuzz:
    def test_three_way_lockstep_oracle(self):
        from repro.validate.oracle import verify_equivalence

        config = small_config()

        def stimulus(device):
            def program(ctx):
                for i in range(16):
                    yield MemOp(WRITE, [i * 128])

            device.launch(Kernel(program, num_blocks=4, warps_per_block=2,
                                 name="writer"))

        divergence = verify_equivalence(
            config, stimulus, max_cycles=20_000,
            strategies=ENGINE_STRATEGIES,
        )
        assert divergence is None, str(divergence)

    def test_three_way_quick_fuzz(self):
        from repro.validate.fuzz import fuzz

        report = fuzz(runs=3, seed=9100, oracle_cycles=4_000,
                      strategies=ENGINE_STRATEGIES)
        assert report.ok, [case.failure for case in report.failures]


class TestNumpyGating:
    def test_missing_numpy_raises_config_error(self, monkeypatch):
        # Simulate an environment without the optional extra: the vector
        # module's import machinery sees an ImportError.
        monkeypatch.delitem(sys.modules, "repro.sim.vector", raising=False)
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(ConfigError, match="requires numpy"):
            create_engine("vector")

    def test_missing_numpy_fails_at_device_build(self, monkeypatch):
        monkeypatch.delitem(sys.modules, "repro.sim.vector", raising=False)
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(ConfigError, match="requires numpy"):
            GpuDevice(small_config(engine_strategy="vector"))

    def test_strategy_validated_in_config(self):
        assert "vector" in ENGINE_STRATEGIES
        with pytest.raises(ValueError):
            GpuConfig(engine_strategy="simd")


class TestVectorEngineScheduling:
    def test_timer_and_fast_forward(self):
        from repro.sim.engine import Component

        class Parked(Component):
            def __init__(self):
                self.ticks = []

            def tick(self, cycle):
                self.ticks.append(cycle)

            def idle_until(self, cycle):
                return 100 if cycle < 100 else FOREVER

        parked = Parked()
        engine = create_engine("vector")
        engine.register(parked)
        engine.step(200)
        assert parked.ticks == [0, 100]
        assert engine.fast_forwarded_cycles > 0

    def test_mid_cycle_wake_ordering(self):
        # A wake targeting an index *behind* the scan position lands next
        # cycle; one *ahead* of it lands in the same cycle — matching the
        # active strategy's in-cycle pipeline ordering exactly.
        from repro.sim.engine import Component

        log = []

        class Waker(Component):
            name = "waker"

            def __init__(self):
                self.fired = False

            def tick(self, cycle):
                log.append(("waker", cycle))
                if not self.fired:
                    self.fired = True
                    downstream.wake()
                    upstream.wake()

            def idle_until(self, cycle):
                return FOREVER

        class Quiet(Component):
            def __init__(self, name):
                self.name = name

            def tick(self, cycle):
                log.append((self.name, cycle))

            def idle_until(self, cycle):
                return FOREVER

        upstream = Quiet("upstream")
        waker = Waker()
        downstream = Quiet("downstream")
        engine = create_engine("vector")
        engine.register(upstream)
        engine.register(waker)
        engine.register(downstream)
        engine.step(3)
        ticks = [entry for entry in log if entry[0] != "waker"]
        assert ("downstream", 0) in ticks  # woken ahead: same cycle
        assert ("upstream", 1) in ticks    # woken behind: next cycle
        assert ("upstream", 0) in ticks    # initial activation


class TestSoaMirror:
    def _queue(self, name, capacity=8):
        return PacketQueue(name, capacity)

    def test_write_through_tracks_occupancy(self):
        from repro.noc.packet import Packet

        queues = [self._queue("q0"), self._queue("q1")]
        mirror = SoaMirror(queues)
        packet = Packet(kind=READ, address=0, flits=2, src_sm=0,
                        slice_id=0)
        queues[0].push(packet)
        assert mirror.q_len[mirror.index_of(queues[0])] == 1
        queues[0].pop()
        assert mirror.q_len[mirror.index_of(queues[0])] == 0

    def test_double_mirror_rejected(self):
        queues = [self._queue("q0")]
        SoaMirror(queues)
        with pytest.raises(ValueError):
            SoaMirror(queues)

    def test_bank_requires_contiguous_registration(self):
        from repro.noc.arbiter import make_policy
        from repro.noc.mux import Mux

        queues = [self._queue(f"in{i}") for i in range(4)]
        out = self._queue("out", capacity=32)
        mirror = SoaMirror(queues + [out])
        muxes = [
            Mux(f"m{i}", [queues[2 * i], queues[2 * i + 1]], out, 1,
                make_policy("rr", 2))
            for i in range(2)
        ]
        engine = VectorEngine()
        engine.register(muxes[0])
        gap = create_engine("naive")  # unrelated engine, not a component
        assert gap is not None
        filler = Mux("filler", [self._queue("fx"), self._queue("fy")],
                     self._queue("fout", capacity=32), 1,
                     make_policy("rr", 2))
        engine.register(filler)
        engine.register(muxes[1])
        with pytest.raises(ValueError):
            engine.register_bank(MuxBank("bank", mirror, muxes))

"""Tests for the L1-miss side channel (Section 5, Side Channel Attack)."""

import pytest

from repro.config import small_config
from repro.channel.side_channel import measure_l1_miss_leakage


@pytest.fixture(scope="module")
def trace():
    return measure_l1_miss_leakage(small_config(timing_noise=0))


class TestLeakage:
    def test_latency_correlates_with_miss_count(self, trace):
        """The paper's claim: a linear correlation between NoC contention
        and the victim's L2 accesses (L1 misses)."""
        assert trace.correlation() > 0.85

    def test_latency_increases_from_quiet_to_busy(self, trace):
        assert trace.spy_latencies[-1] > trace.spy_latencies[0] * 1.1

    def test_fit_slope_positive(self, trace):
        slope, _intercept = trace.fit()
        assert slope > 0

    def test_miss_estimate_inverts_reading(self, trace):
        # Estimating the miss count from a mid-range latency should land
        # within the swept range.
        mid_latency = sorted(trace.spy_latencies)[len(trace.spy_latencies) // 2]
        estimate = trace.estimate_misses(mid_latency)
        assert -4 <= estimate <= 36

    def test_invalid_miss_count_rejected(self):
        with pytest.raises(ValueError):
            measure_l1_miss_leakage(
                small_config(), miss_counts=(40,), total_ops=32
            )

    def test_degenerate_trace_handled(self):
        from repro.channel.side_channel import SideChannelTrace

        flat = SideChannelTrace(miss_counts=[1, 1], spy_latencies=[5.0, 5.0])
        assert flat.correlation() == 0.0
        assert flat.estimate_misses(10.0) == 0.0

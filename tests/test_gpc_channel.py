"""End-to-end tests of the GPC covert channel (Section 4.5)."""

import random

import pytest

from repro.config import medium_config
from repro.channel.gpc_channel import GpcCovertChannel
from repro.channel.protocol import ChannelParams
from repro.noc.packet import READ


@pytest.fixture(scope="module")
def cfg():
    return medium_config()


@pytest.fixture(scope="module")
def calibrated(cfg):
    channel = GpcCovertChannel(cfg)
    channel.calibrate()
    return channel


def random_bits(count, seed=23):
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


class TestRoles:
    def test_default_uses_read_requests(self, cfg):
        channel = GpcCovertChannel(cfg)
        assert channel.params.sender_kind == READ

    def test_gpc_slot_longer_than_tpc_slot(self, cfg):
        from repro.channel.tpc_channel import TpcCovertChannel

        gpc = GpcCovertChannel(cfg)
        tpc = TpcCovertChannel(cfg)
        assert gpc.params.slot > tpc.params.slot

    def test_sender_blocks_cover_other_tpcs_of_gpc(self, cfg):
        channel = GpcCovertChannel(cfg, gpcs=[0])
        senders, receivers = channel._role_blocks()
        members = cfg.gpc_members()[0]
        sender_tpcs = {channel._block_tpcs[b] for b in senders}
        receiver_tpcs = {channel._block_tpcs[b] for b in receivers}
        assert receiver_tpcs == {members[0]}
        assert sender_tpcs == set(members[1:])

    def test_unknown_gpc_rejected(self, cfg):
        with pytest.raises(ValueError):
            GpcCovertChannel(cfg, gpcs=[17])


class TestTransmission:
    def test_random_payload_low_error(self, calibrated):
        result = calibrated.transmit(random_bits(32))
        assert result.error_rate <= 0.1

    def test_contention_contrast_visible(self, calibrated):
        bits = [0, 1, 0, 1, 1, 0, 0, 1]
        result = calibrated.transmit(bits)
        series = result.measurements[0]
        ones = [v for v, b in zip(series, bits) if b]
        zeros = [v for v, b in zip(series, bits) if not b]
        assert sum(ones) / len(ones) > 1.2 * sum(zeros) / len(zeros)

    def test_gpc_bandwidth_below_tpc_bandwidth(self, cfg, calibrated):
        """Figure 10: the GPC channel is slower than the TPC channel."""
        from repro.channel.tpc_channel import TpcCovertChannel

        bits = random_bits(24)
        tpc = TpcCovertChannel(cfg)
        tpc.calibrate()
        assert (
            calibrated.transmit(bits).bandwidth_mbps
            < tpc.transmit(bits).bandwidth_mbps
        )


class TestMultiGpc:
    def test_all_channels_one_per_gpc(self, cfg):
        channel = GpcCovertChannel.all_channels(cfg)
        assert channel.num_channels == cfg.num_gpcs

    def test_multi_gpc_aggregates_bandwidth(self, cfg, calibrated):
        multi = GpcCovertChannel.all_channels(cfg)
        multi.calibrate()
        bits = random_bits(12 * cfg.num_gpcs)
        result = multi.transmit(bits)
        single = calibrated.transmit(random_bits(12))
        assert result.bandwidth_mbps > single.bandwidth_mbps
        assert result.error_rate <= 0.15

"""Unit and property tests for the cache models."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.caches import L1Cache, SetAssociativeCache


class TestSetAssociative:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, 64, 2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        # 2-way cache: set has room for two lines; third evicts the LRU.
        cache = SetAssociativeCache(128, 64, 2)  # 1 set, 2 ways
        cache.access(0)
        cache.access(64)
        cache.access(0)          # refresh line 0: line 64 is now LRU
        cache.access(128)        # evicts 64
        assert cache.probe(0)
        assert not cache.probe(64)
        assert cache.probe(128)

    def test_no_allocate_mode_does_not_install(self):
        cache = SetAssociativeCache(1024, 64, 2)
        cache.access(0, allocate=False)
        assert not cache.probe(0)

    def test_install_counts_nothing(self):
        cache = SetAssociativeCache(1024, 64, 2)
        cache.install(0)
        assert cache.accesses == 0
        assert cache.probe(0)

    def test_install_refreshes_lru(self):
        cache = SetAssociativeCache(128, 64, 2)
        cache.install(0)
        cache.install(64)
        cache.install(0)        # refresh
        cache.install(128)      # evict 64
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 64, 3)
        with pytest.raises(ValueError):
            SetAssociativeCache(32, 64, 2)

    def test_invalidate_all(self):
        cache = SetAssociativeCache(1024, 64, 2)
        cache.access(0)
        cache.invalidate_all()
        assert not cache.probe(0)
        assert cache.accesses == 0

    def test_hit_rate(self):
        cache = SetAssociativeCache(1024, 64, 2)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert SetAssociativeCache(1024, 64, 2).hit_rate == 0.0

    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=200)
    )
    def test_occupancy_never_exceeds_ways(self, lines):
        cache = SetAssociativeCache(512, 64, 2)  # 4 sets x 2 ways
        for line in lines:
            cache.access(line * 64)
        for entries in cache._sets:
            assert len(entries) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=100))
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = SetAssociativeCache(512, 64, 2)
        for line in lines:
            cache.access(line * 64)
        assert cache.hits + cache.misses == len(lines)


class TestRandomReplacement:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(512, 64, 2, replacement="plru")

    def test_random_replacement_deterministic_per_seed(self):
        def resident_after_storm(seed):
            cache = SetAssociativeCache(
                512, 64, 2, replacement="random", seed=seed
            )
            for line in range(40):
                cache.access(line * 64)
            return [cache.probe(line * 64) for line in range(40)]

        assert resident_after_storm(3) == resident_after_storm(3)

    def test_random_replacement_can_evict_hot_lines(self):
        """The property the third-kernel noise study depends on: under
        streaming pressure, random replacement eventually displaces even
        a constantly-touched line, where true LRU never would."""
        def hot_line_survives(replacement):
            cache = SetAssociativeCache(
                128, 64, 2, replacement=replacement, seed=5
            )  # 1 set, 2 ways
            cache.install(0)
            for step in range(1, 200):
                cache.access(0)           # keep the hot line MRU
                cache.access(step * 64)   # streaming interferer
                if not cache.probe(0):
                    return False
            return True

        assert hot_line_survives("lru")
        assert not hot_line_survives("random")

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=150))
    def test_random_mode_occupancy_invariant(self, lines):
        cache = SetAssociativeCache(512, 64, 2, replacement="random")
        for line in lines:
            cache.access(line * 64)
        for entries in cache._sets:
            assert len(entries) <= 2


class TestL1Cache:
    def make(self, enabled=True):
        return L1Cache(4096, 128, 4, hit_latency=28, enabled=enabled)

    def test_bypassed_l1_never_hits(self):
        """-dlcm=cg behaviour: every access goes to the interconnect."""
        l1 = self.make(enabled=False)
        l1.fill(0)
        assert not l1.lookup_read(0)

    def test_fill_then_hit(self):
        l1 = self.make()
        assert not l1.lookup_read(0)
        l1.fill(0)
        assert l1.lookup_read(0)

    def test_read_lookup_does_not_allocate(self):
        l1 = self.make()
        l1.lookup_read(256)
        assert not l1.lookup_read(256)

    def test_write_through_keeps_line_fresh(self):
        l1 = self.make()
        l1.fill(0)
        l1.note_write(0)
        assert l1.lookup_read(0)

    def test_write_to_absent_line_does_not_allocate(self):
        l1 = self.make()
        l1.note_write(512)
        assert not l1.lookup_read(512)

    def test_disabled_fill_is_noop(self):
        l1 = self.make(enabled=False)
        l1.fill(0)
        assert not l1.cache.probe(0)

"""Tests for the clock survey (Fig 6) and co-location probing (Sec 4.3)."""

import pytest

from repro.config import small_config
from repro.reveng.clockmap import (
    repeated_skew_statistics,
    survey_clocks,
)
from repro.reveng.colocation import (
    infer_scheduling_policy,
    plan_tpc_colocation,
    probe_block_placement,
)
from repro.gpu.scheduler import dispatch_order


@pytest.fixture(scope="module")
def cfg():
    return small_config()


class TestClockSurvey:
    def test_values_recorded_for_every_sm(self, cfg):
        survey = survey_clocks(cfg)
        assert set(survey.values) == set(range(cfg.num_sms))

    def test_tpc_skews_under_paper_bound(self, cfg):
        survey = survey_clocks(cfg)
        assert all(skew <= 10 for skew in survey.tpc_skews())

    def test_gpc_skews_under_paper_bound(self, cfg):
        survey = survey_clocks(cfg)
        assert all(skew <= 25 for skew in survey.gpc_skews())

    def test_cross_gpc_values_far_apart(self, cfg):
        survey = survey_clocks(cfg)
        members = cfg.gpc_members()
        sm_a = cfg.tpc_sms(members[0][0])[0]
        sm_b = cfg.tpc_sms(members[1][0])[0]
        # Figure 6: different GPCs read wildly different register values.
        delta = abs(survey.values[sm_a] - survey.values[sm_b])
        assert delta > 10_000

    def test_repeated_statistics_match_section_4_1(self, cfg):
        stats = repeated_skew_statistics(cfg, runs=10)
        assert stats["avg_tpc_skew"] < 5 + cfg.clock_skew.read_jitter * 2
        assert stats["avg_gpc_skew"] < 15 + cfg.clock_skew.read_jitter * 2
        assert stats["avg_tpc_skew"] <= stats["avg_gpc_skew"]


class TestColocationProbing:
    def test_inferred_policy_matches_dispatch_order(self, cfg):
        assert infer_scheduling_policy(cfg) == dispatch_order(cfg)

    def test_probe_records_every_block(self, cfg):
        placements = probe_block_placement(cfg, grid_sizes=(3, 2))
        assert set(placements) == {
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1)
        }

    def test_plan_covers_every_tpc(self, cfg):
        plan = plan_tpc_colocation(cfg)
        assert set(plan.pairs) == set(range(cfg.num_tpcs))
        assert plan.num_channels == cfg.num_tpcs

    def test_pairs_are_distinct_sms_of_one_tpc(self, cfg):
        plan = plan_tpc_colocation(cfg)
        for tpc, (sender_sm, receiver_sm) in plan.pairs.items():
            assert sender_sm != receiver_sm
            assert cfg.sm_to_tpc(sender_sm) == tpc
            assert cfg.sm_to_tpc(receiver_sm) == tpc

"""Cross-architecture tests (Section 5, "Other GPU Architectures").

The paper confirmed the same covert channels on Kepler, Pascal, and
Turing GPUs — "the main difference... was reverse-engineering the GPU
hierarchy... as they varied slightly."  These tests run the attack's core
mechanisms on the Pascal- and Turing-like presets to show the library is
not hard-wired to the Volta topology.
"""

import random

import pytest

from repro.config import ARCHITECTURES, PASCAL_P100, TURING_TU104, VOLTA_V100
from repro.channel.tpc_channel import TpcCovertChannel
from repro.gpu.scheduler import dispatch_order
from repro.reveng.tpc_discovery import measure_active_sms


class TestPresets:
    def test_registry_contains_three_architectures(self):
        assert set(ARCHITECTURES) == {"volta", "pascal", "turing"}

    def test_pascal_topology(self):
        assert PASCAL_P100.num_tpcs == 28
        assert PASCAL_P100.num_sms == 56
        assert PASCAL_P100.num_gpcs == 6

    def test_turing_topology(self):
        assert TURING_TU104.num_tpcs == 24
        assert TURING_TU104.num_sms == 48

    def test_architectures_differ_in_hierarchy(self):
        shapes = {
            (cfg.num_gpcs, cfg.num_tpcs, cfg.num_sms)
            for cfg in ARCHITECTURES.values()
        }
        assert len(shapes) == 3

    @pytest.mark.parametrize("name", sorted(ARCHITECTURES))
    def test_dispatch_order_covers_every_sm(self, name):
        config = ARCHITECTURES[name]
        order = dispatch_order(config)
        assert sorted(order) == list(range(config.num_sms))


class TestAttackGeneralizes:
    @pytest.mark.parametrize("config", [PASCAL_P100, TURING_TU104],
                             ids=["pascal", "turing"])
    def test_tpc_write_contention_exists(self, config):
        """The shared-mux 2x signature appears on every architecture."""
        baseline = measure_active_sms(config, {0}, "write", ops=6)[0]
        paired = measure_active_sms(config, {0, 1}, "write", ops=6)[0]
        assert paired / baseline == pytest.approx(2.0, rel=0.15)

    @pytest.mark.parametrize("config", [PASCAL_P100, TURING_TU104],
                             ids=["pascal", "turing"])
    def test_covert_channel_works(self, config):
        channel = TpcCovertChannel(config)
        channel.calibrate(training_symbols=12)
        rng = random.Random(6)
        bits = [rng.randint(0, 1) for _ in range(16)]
        result = channel.transmit(bits)
        assert result.error_rate <= 0.1

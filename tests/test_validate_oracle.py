"""Lockstep engine-oracle tests (repro.validate.oracle)."""

import pytest

from repro.config import small_config
from repro.gpu.workloads import make_streaming_kernel
from repro.sim.engine import Component
from repro.validate import Divergence, LockstepOracle, verify_equivalence


def streaming_stimulus(kind="write", ops=8, blocks=4):
    def stimulus(device):
        device.preload_region(0, 1 << 20)
        device.launch(make_streaming_kernel(
            device.config, kind, ops=ops, num_blocks=blocks,
        ))
    return stimulus


class TestEquivalence:
    def test_write_workload_no_divergence(self):
        config = small_config(timing_noise=0)
        assert verify_equivalence(
            config, streaming_stimulus("write"), max_cycles=20_000
        ) is None

    def test_read_workload_with_noise_no_divergence(self):
        # timing_noise exercises the SM rng digests on both sides.
        config = small_config(timing_noise=16)
        assert verify_equivalence(
            config, streaming_stimulus("read"), max_cycles=20_000
        ) is None

    def test_idle_device_no_divergence(self):
        assert verify_equivalence(
            small_config(), None, max_cycles=512, compare_every=128
        ) is None

    def test_compare_every_must_be_positive(self):
        with pytest.raises(ValueError):
            LockstepOracle(small_config(), None, compare_every=0)


class LyingComponent(Component):
    """Claims to be idle for 5 cycles although it has work every cycle.

    Under the naive engine (ticks everything) its counter advances every
    cycle; under the active engine the false ``idle_until`` parks it —
    exactly the class of scheduling bug the oracle exists to pinpoint.
    """

    name = "liar"

    def __init__(self):
        self.count = 0

    def tick(self, cycle):
        self.count += 1

    def idle_until(self, cycle):
        return cycle + 5  # a lie: tick() has work every cycle

    def state_digest(self):
        return self.count

    def reset(self):
        self.count = 0


class TestBisection:
    def test_lying_idle_until_is_pinpointed(self):
        def stimulus(device):
            device.engine.register(LyingComponent())

        divergence = verify_equivalence(
            small_config(), stimulus, max_cycles=4096, compare_every=64
        )
        assert isinstance(divergence, Divergence)
        assert divergence.component == "liar"
        # Naive count after k cycles is k; active ticks at cycle 0 then
        # parks until cycle 5, so the first mismatch is after 2 cycles.
        assert divergence.cycle == 2
        assert divergence.naive_digest == 2
        assert divergence.active_digest == 1
        assert "liar" in str(divergence)

"""Property-based accounting tests for PacketQueue and Mux.

Seeded ``random`` only (no extra dependencies): each property runs a few
hundred randomized operation sequences against a trivially-correct model
and asserts the flit accounting the whole NoC depends on.
"""

import random

import pytest

from repro.config import ARBITRATION_POLICIES
from repro.noc.arbiter import make_policy
from repro.noc.buffer import PacketQueue
from repro.noc.mux import Mux
from repro.noc.packet import Packet, READ, WRITE
from repro.sim.engine import Engine


def make_packet(rng, src_sm=0, group_id=-1, birth_cycle=0):
    kind = rng.choice([READ, WRITE])
    return Packet(
        kind=kind,
        address=rng.randrange(0, 1 << 16) * 128,
        flits=rng.randint(1, 4),
        src_sm=src_sm,
        slice_id=rng.randrange(0, 8),
        group_id=group_id,
        birth_cycle=birth_cycle,
    )


class QueueModel:
    """Reference model: a plain list plus the documented capacity rule."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.packets = []
        self.reserved = 0

    @property
    def used(self):
        return sum(p.flits for p in self.packets)

    def can_reserve(self, flits):
        return self.used + self.reserved + flits <= self.capacity


class TestPacketQueueProperties:
    """reserve/commit/pop/clear accounting vs the reference model."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_op_sequences_match_model(self, seed):
        rng = random.Random(seed)
        capacity = rng.randint(4, 32)
        queue = PacketQueue("prop.q", capacity)
        model = QueueModel(capacity)
        pending = []  # reservations not yet committed, FIFO

        for _ in range(200):
            op = rng.choice(["reserve", "commit", "push", "pop", "clear"])
            if op == "reserve":
                packet = make_packet(rng)
                if model.can_reserve(packet.flits):
                    assert queue.can_reserve(packet.flits)
                    queue.reserve(packet.flits)
                    model.reserved += packet.flits
                    pending.append(packet)
                else:
                    assert not queue.can_reserve(packet.flits)
                    with pytest.raises(OverflowError):
                        queue.reserve(packet.flits)
            elif op == "commit" and pending:
                packet = pending.pop(0)
                queue.commit(packet)
                model.reserved -= packet.flits
                model.packets.append(packet)
            elif op == "push":
                packet = make_packet(rng)
                expected = model.can_reserve(packet.flits)
                assert queue.push(packet) is expected
                if expected:
                    model.packets.append(packet)
            elif op == "pop" and model.packets:
                expected = model.packets.pop(0)
                assert queue.pop() is expected
            elif op == "clear":
                queue.clear()
                model.packets.clear()
                model.reserved = 0
                pending.clear()

            # The invariants, every step:
            assert queue.used_flits == model.used
            assert queue._reserved_flits == model.reserved
            assert len(queue) == len(model.packets)
            assert queue.used_flits + queue._reserved_flits \
                <= queue.capacity_flits
            assert queue.free_flits == (
                capacity - model.used - model.reserved
            )
            head = queue.head()
            assert head is (model.packets[0] if model.packets else None)

    def test_commit_without_reservation_raises(self):
        queue = PacketQueue("q", 16)
        with pytest.raises(RuntimeError):
            queue.commit(make_packet(random.Random(0)))


class TestMuxFlitConservation:
    """Flits in == flits out across random policies, widths and inputs."""

    @pytest.mark.parametrize("policy_name", ARBITRATION_POLICIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_everything_offered_is_delivered_exactly_once(
        self, policy_name, seed
    ):
        rng = random.Random(seed * 97 + sum(policy_name.encode()))
        num_inputs = rng.randint(1, 4)
        width = rng.randint(1, 3)
        engine = Engine(strategy="naive")
        inputs = [
            PacketQueue(f"in{i}", 64) for i in range(num_inputs)
        ]
        output = PacketQueue("out", 64)
        mux = Mux(
            "prop.mux", inputs, output, width=width,
            policy=make_policy(policy_name, num_inputs, seed=seed),
        )
        engine.register(mux)

        offered = []  # (port, packet) in offer order
        delivered = []
        group = 0
        for cycle in range(400):
            # Randomly offer packets on random ports.
            if rng.random() < 0.5:
                port = rng.randrange(num_inputs)
                packet = make_packet(
                    rng, src_sm=port, group_id=group, birth_cycle=cycle
                )
                group += 1
                if inputs[port].push(packet):
                    offered.append((port, packet))
            engine.step(1)
            while output:
                delivered.append(output.pop())
            # Accounting invariants hold mid-flight.
            for port, queue in enumerate(inputs):
                assert 0 <= queue.used_flits <= queue.capacity_flits
                assert mux._reserved[port] == (mux._progress[port] > 0)
        # Drain: no new offers, let in-flight packets finish.  srr only
        # serves each input 1/N of the time, so the budget is generous.
        for _ in range(2000):
            engine.step(1)
            while output:
                delivered.append(output.pop())
            if not any(inputs) and not any(mux._reserved):
                break

        assert len(delivered) == len(offered)
        # Conservation: exactly the offered packets come out, each once.
        assert sorted(p.uid for p in delivered) == sorted(
            p.uid for _, p in offered
        )
        # Per-port FIFO order is preserved.
        for port in range(num_inputs):
            sent = [p.uid for q, p in offered if q == port]
            received = [p.uid for p in delivered if p.src_sm == port]
            assert received == sent
        # All flit state drained.
        assert all(q.used_flits == 0 for q in inputs)
        assert all(not r for r in mux._reserved)
        assert output._reserved_flits == 0

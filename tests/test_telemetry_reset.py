"""Telemetry must reset with the model (the stale-telemetry bugfix).

``PacketQueue.clear()`` historically never informed its meter, and
``Engine.reset()`` left meter peaks, link series, and tracer contents
from the previous run — so any telemetry read after a reset mixed two
runs' worth of observations.  These tests pin the fixed behaviour: a run
after ``Engine.reset()`` records exactly what the same run on a freshly
built device records.
"""

from repro.config import small_config
from repro.gpu.device import GpuDevice
from repro.gpu.workloads import make_streaming_kernel
from repro.noc.buffer import PacketQueue
from repro.telemetry.timeline import QueueMeter


def _run_workload(device):
    config = device.config
    device.preload_region(0, 1 << 18)
    device.launch(make_streaming_kernel(
        config, "read", ops=6, num_blocks=config.num_sms,
    ))
    device.run()


def _telemetry_snapshot(device):
    """Identity-free view of everything the hub observed.

    Tracer payload fields can carry packet uids (drawn from a process
    global counter, different in every run), so events are projected to
    their (cycle, kind, component) prefix.
    """
    hub = device.telemetry
    manifest = device.telemetry_manifest()
    return {
        "cycle": device.cycle,
        "events": [event[:3] for event in hub.tracer],
        "links": {s.name: dict(s.flits) for s in hub.timeline.links},
        "meters": {m.name: (m.peak, dict(m.series))
                   for m in hub.timeline.meters},
        "fast_forwards": list(hub.fast_forwards),
        "manifest": manifest,
        "counters": dict(device.stats.counters),
    }


class TestResetMatchesFreshDevice:
    def test_post_reset_run_records_identical_telemetry(self):
        config = small_config(telemetry_enabled=True, timing_noise=16)
        reused = GpuDevice(config)
        _run_workload(reused)
        first = _telemetry_snapshot(reused)
        assert first["events"], "workload produced no telemetry"

        reused.engine.reset()
        _run_workload(reused)
        after_reset = _telemetry_snapshot(reused)

        fresh = GpuDevice(config)
        _run_workload(fresh)
        from_fresh = _telemetry_snapshot(fresh)

        assert after_reset == from_fresh
        # And the reset run matches the device's own first run too.
        assert after_reset == first

    def test_reset_clears_all_observability_state(self):
        config = small_config(telemetry_enabled=True)
        device = GpuDevice(config)
        _run_workload(device)
        hub = device.telemetry
        assert len(hub.tracer) > 0
        assert any(series.flits for series in hub.timeline.links)
        assert device.stats.counters

        device.engine.reset()
        assert len(hub.tracer) == 0
        assert hub.tracer.dropped == 0
        assert all(not series.flits for series in hub.timeline.links)
        assert all(
            not meter.series and meter.peak == 0
            for meter in hub.timeline.meters
        )
        assert hub.fast_forwards == []
        assert not device.stats.counters

    def test_component_registrations_survive_reset(self):
        config = small_config(telemetry_enabled=True)
        device = GpuDevice(config)
        names_before = dict(enumerate(device.telemetry.component_names))
        device.engine.reset()
        assert dict(enumerate(device.telemetry.component_names)) == \
            names_before


class TestQueueClearInformsMeter:
    def test_clear_drops_the_standing_peak(self):
        queue = PacketQueue("q", 64)
        meter = QueueMeter("q", queue)
        queue.meter = meter
        from repro.noc.packet import Packet, WRITE

        queue.push(Packet(kind=WRITE, address=0, flits=8, src_sm=0,
                          slice_id=0, birth_cycle=0))
        meter.note(queue.used_flits)
        assert meter.peak == 8
        queue.clear()
        # Regression: the meter used to keep reporting the pre-clear
        # occupancy as the next epoch's baseline.
        assert meter.peak == 0
        meter.flush(epoch=0)
        assert meter.series == {}

    def test_clear_without_meter_is_fine(self):
        queue = PacketQueue("q", 64)
        queue.clear()  # must not raise with no meter attached

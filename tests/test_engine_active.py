"""Active-set scheduling: cycle-exactness vs the naive loop + fast-forward.

The active-set engine is a pure optimisation; these tests pin down the
contract that makes it trustworthy:

* seeded covert-channel runs produce *bit-identical* results (cycle
  counts, received symbols, full latency traces, device counters) under
  ``engine_strategy="active"`` and ``"naive"``;
* when the whole model is quiescent the engine jumps the cycle counter
  to the next wake-up instead of spinning (ticks executed stay tiny);
* ``run_until`` hits its timeout cap exactly and checks the condition
  before the first step, under both strategies.
"""

import pytest

from repro.config import medium_config, small_config
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, READ, WaitCycles
from repro.sim.engine import FOREVER, Component, Engine, create_engine

try:
    import numpy  # noqa: F401

    _HAS_NUMPY = True
except ImportError:
    _HAS_NUMPY = False

#: The optimised strategies, each compared against the naive baseline.
#: ``vector`` is skipped (not failed) when its numpy extra is missing.
OPTIMIZED = [
    "active",
    pytest.param("vector", marks=pytest.mark.skipif(
        not _HAS_NUMPY, reason="vector strategy requires numpy"
    )),
]
ALL_STRATEGIES = ["naive"] + OPTIMIZED


def _channel_fingerprint(config):
    from repro.channel import TpcCovertChannel

    channel = TpcCovertChannel(config)
    channel.calibrate()
    bits = [i % 2 for i in range(16)]
    result = channel.transmit(bits)
    return result.cycles, result.received_symbols, result.measurements


def _gpc_fingerprint(config):
    from repro.channel import GpcCovertChannel

    channel = GpcCovertChannel(config)
    channel.calibrate()
    result = channel.transmit([1, 0, 1, 1, 0, 0, 1, 0])
    return result.cycles, result.received_symbols, result.measurements


class TestCycleExactness:
    @pytest.mark.parametrize("strategy", OPTIMIZED)
    def test_tpc_channel_identical_small(self, strategy):
        naive = _channel_fingerprint(small_config(engine_strategy="naive"))
        other = _channel_fingerprint(
            small_config(engine_strategy=strategy)
        )
        assert naive == other

    @pytest.mark.parametrize("strategy", OPTIMIZED)
    def test_gpc_channel_identical_medium(self, strategy):
        naive = _gpc_fingerprint(medium_config(engine_strategy="naive"))
        other = _gpc_fingerprint(medium_config(engine_strategy=strategy))
        assert naive == other

    @pytest.mark.parametrize("strategy", OPTIMIZED)
    def test_device_counters_identical(self, strategy):
        def run(strategy):
            config = small_config(engine_strategy=strategy)
            device = GpuDevice(config)

            def program(ctx):
                for i in range(32):
                    yield MemOp(READ, [i * 128])

            device.launch(Kernel(program, num_blocks=4, warps_per_block=2,
                                 name="reader"))
            device.run()
            return device.engine.cycle, device.stats.snapshot()

        assert run("naive") == run(strategy)

    @pytest.mark.parametrize("strategy", OPTIMIZED)
    def test_fig9_trace_identical(self, strategy):
        from repro.analysis.figures import fig9_latency_trace

        naive = fig9_latency_trace(
            small_config(engine_strategy="naive"), with_sync=True,
            num_bits=12,
        )
        other = fig9_latency_trace(
            small_config(engine_strategy=strategy), with_sync=True,
            num_bits=12,
        )
        assert naive == other


class TestFastForward:
    def test_sleeping_warps_fast_forward(self):
        # One warp sleeping 50k cycles: the active engine must jump the
        # gap, executing orders of magnitude fewer ticks than cycles.
        device = GpuDevice(small_config(engine_strategy="active"))

        def sleeper(ctx):
            yield WaitCycles(50_000)

        device.launch(Kernel(sleeper, num_blocks=1, warps_per_block=1,
                             name="sleeper"))
        device.run()
        engine = device.engine
        assert engine.cycle >= 50_000
        assert engine.fast_forwarded_cycles > 45_000
        assert engine.ticks_executed < 1_000

    def test_naive_engine_never_fast_forwards(self):
        device = GpuDevice(small_config(engine_strategy="naive"))

        def sleeper(ctx):
            yield WaitCycles(2_000)

        device.launch(Kernel(sleeper, num_blocks=1, warps_per_block=1,
                             name="sleeper"))
        device.run()
        assert device.engine.fast_forwarded_cycles == 0

    def test_quiescent_empty_engine_jumps_to_step_target(self):
        engine = Engine()
        engine.step(10_000)
        assert engine.cycle == 10_000
        assert engine.ticks_executed == 0
        assert engine.fast_forwarded_cycles == 10_000

    def test_timer_wakes_parked_component(self):
        class Parked(Component):
            def __init__(self):
                self.ticks = []

            def tick(self, cycle):
                self.ticks.append(cycle)

            def idle_until(self, cycle):
                return 100 if cycle < 100 else FOREVER

        parked = Parked()
        engine = Engine([parked])
        engine.step(200)
        # Ticked at 0 (initially active), parked until 100, woke exactly
        # there, then parked forever.
        assert parked.ticks == [0, 100]

    def test_wake_reactivates_forever_parked_component(self):
        class Reactive(Component):
            def __init__(self):
                self.ticks = []

            def tick(self, cycle):
                self.ticks.append(cycle)

            def idle_until(self, cycle):
                return FOREVER

        reactive = Reactive()
        engine = Engine([reactive])
        engine.step(10)
        assert reactive.ticks == [0]
        reactive.wake()
        engine.step(10)
        assert reactive.ticks == [0, 10]

    def test_reset_restores_full_activity(self):
        class Lazy(Component):
            def __init__(self):
                self.ticks = 0

            def tick(self, cycle):
                self.ticks += 1

            def idle_until(self, cycle):
                return FOREVER

        lazy = Lazy()
        engine = Engine([lazy])
        engine.step(5)
        engine.reset()
        assert engine.cycle == 0
        assert engine.ticks_executed == 0
        assert engine.fast_forwarded_cycles == 0
        engine.step(1)
        assert lazy.ticks == 2  # once before reset, once after


class TestRunUntil:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_timeout_cap_is_exact(self, strategy):
        engine = create_engine(strategy)
        with pytest.raises(TimeoutError):
            engine.run_until(lambda: False, max_cycles=1000, check_every=64)
        # 1000 is not a multiple of 64: the final step must be clamped.
        assert engine.cycle == 1000

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_condition_checked_before_first_step(self, strategy):
        engine = create_engine(strategy)
        final = engine.run_until(lambda: True, max_cycles=10)
        assert final == 0
        assert engine.cycle == 0

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            Engine(strategy="warp-speed")
        with pytest.raises(ValueError):
            small_config(engine_strategy="warp-speed")

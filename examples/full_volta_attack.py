#!/usr/bin/env python3
"""The full-scale attack on the Table-1 Volta V100 configuration.

Runs all four channel variants the paper measures (Figure 10): single
TPC, 40-way multi-TPC, single GPC, and 6-way multi-GPC — on the complete
80-SM simulated GPU.  This is the slowest example (a few minutes of
simulation); the scaled-down examples cover the same code paths faster.

Run with::

    python examples/full_volta_attack.py
"""

import random
import time

from repro import VOLTA_V100
from repro.analysis import format_table
from repro.channel import GpcCovertChannel, TpcCovertChannel


def measure(label, channel, bits_per_channel, rng):
    start = time.time()
    channel.calibrate(training_symbols=12)
    payload = [
        rng.randint(0, 1)
        for _ in range(bits_per_channel * channel.num_channels)
    ]
    result = channel.transmit(payload)
    wall = time.time() - start
    print(f"    {label}: {result.bandwidth_mbps:.2f} Mbps, "
          f"error {result.error_rate:.4f} "
          f"({len(payload)} bits, {wall:.0f}s host time)")
    return [
        label,
        channel.num_channels,
        f"{result.bandwidth_mbps:.2f}",
        f"{result.error_rate:.4f}",
    ]


def main() -> None:
    config = VOLTA_V100
    print(f"Volta V100 model: {config.num_gpcs} GPCs / "
          f"{config.num_tpcs} TPCs / {config.num_sms} SMs, "
          f"{config.num_l2_slices} L2 slices\n")
    rng = random.Random(1021)
    rows = [
        measure("TPC channel (single)", TpcCovertChannel(config), 24, rng),
        measure(
            "TPC channel (all 40 TPCs)",
            TpcCovertChannel.all_channels(config),
            10,
            rng,
        ),
        measure("GPC channel (single)", GpcCovertChannel(config), 24, rng),
        measure(
            "GPC channel (all 6 GPCs)",
            GpcCovertChannel.all_channels(config),
            16,
            rng,
        ),
    ]
    print()
    print(format_table(["channel", "parallel pipes", "Mbps", "error"], rows))
    print("\nPaper reference (Volta hardware): TPC ~1 Mbps, multi-TPC "
          "~24 Mbps, GPC ~0.8 Mbps, multi-GPC ~4 Mbps — the simulator "
          "reproduces the ordering and scaling, not the absolute rates.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Parallel cached sweep: Figure 10 bandwidth/error over worker processes.

Each sweep point (an iteration count of the receiver's probe loop) is an
independent simulation, so the experiment runner fans them out over a
``multiprocessing`` pool and memoises every result in an on-disk cache
keyed by (workload, config, params, seed, code version).  Re-running this
script replays the whole sweep from ``.repro_cache`` in milliseconds;
editing any simulator source invalidates the cache automatically.

Run with::

    python examples/parallel_sweep.py
"""

import time

from repro import small_config
from repro.analysis import format_table
from repro.runner import ResultCache, SimJob, run_jobs


def main() -> None:
    config = small_config()
    iterations = (1, 2, 3, 4, 5)
    jobs = [
        SimJob(
            fn="repro.runner.workloads.fig10_point",
            config=config,
            params={
                "kind": "tpc",
                "iteration_count": count,
                "bits_per_channel": 8,
                "seed": 1021 + index,
            },
        )
        for index, count in enumerate(iterations)
    ]

    cache = ResultCache()
    start = time.perf_counter()
    # timeout_s/retries engage the supervised runner: each point executes
    # in its own babysat worker process, so a crash or hang in one point
    # is retried with backoff instead of aborting the sweep, and every
    # completed result is checkpointed write-through as it arrives.
    rows = run_jobs(
        jobs,
        cache=cache,
        timeout_s=600.0,
        retries=2,
        progress=lambda done, total: print(f"  {done}/{total} points done"),
    )
    elapsed = time.perf_counter() - start

    print(format_table(
        ["iterations", "bit rate (kbps)", "error rate"],
        [(r["iterations"], f"{r['bandwidth_kbps']:.1f}",
          f"{r['error_rate']:.3f}") for r in rows],
    ))
    print(f"{len(jobs)} points in {elapsed:.2f}s "
          f"({cache.hits} cache hits, {cache.misses} misses); "
          f"run again to replay from {cache.root}/")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reverse-engineer the GPU's on-chip network organization (Section 3).

Recovers, from timing measurements alone:

1. which SMs share a TPC injection channel (Algorithm 1 / Figure 2),
2. which TPCs share a GPC channel (Figure 3),
3. the full logical-to-physical map (Figure 4),
4. the thread-block scheduler's dispatch policy (Section 4.3), and
5. the per-SM clock register skews that make synchronization free
   (Figure 6).

Run with::

    python examples/reverse_engineer_topology.py
"""

from repro.analysis import format_table
from repro.config import medium_config
from repro.reveng import (
    infer_scheduling_policy,
    plan_tpc_colocation,
    recover_gpc_groups,
    survey_clocks,
    sweep_tpc_pairing,
    verify_topology,
)


def main() -> None:
    # Noise-free mid-size GPU: 2 GPCs with 5+4 TPCs (18 SMs).
    config = medium_config(timing_noise=0)
    print(f"target GPU: {config.num_gpcs} GPCs, {config.num_tpcs} TPCs, "
          f"{config.num_sms} SMs\n")

    # -- Step 1: which SM shares SM0's injection channel? (Figure 2) --- #
    print("[1] Algorithm 1 sweep: co-run SM0 with each other SM")
    sweep = sweep_tpc_pairing(config, ops=8)
    rows = [
        (f"SM{sm}", ratio)
        for sm, ratio in sorted(sweep.normalized().items())
    ]
    print(format_table(["co-runner", "SM0 slowdown"], rows))
    print(f"-> SM0's TPC sibling(s): {sweep.partner_of_sm0()}\n")

    # -- Step 2: recover GPC membership (Figures 3 and 4) -------------- #
    print("[2] GPC membership discovery (randomized co-activation)")
    groups = recover_gpc_groups(config, trials=8, ops=3, seed=5)
    for index, group in enumerate(groups):
        print(f"    recovered group {index}: TPCs {sorted(group)}")
    print(f"-> matches ground truth: {verify_topology(config, groups)}\n")

    # -- Step 3: thread-block scheduling policy (Section 4.3) ---------- #
    print("[3] Thread-block dispatch order (one block per SM)")
    order = infer_scheduling_policy(config)
    print(f"    block i -> SM: {order}")
    plan = plan_tpc_colocation(config)
    print(f"-> sender/receiver co-location verified on "
          f"{plan.num_channels} TPCs\n")

    # -- Step 4: clock register survey (Figure 6) ----------------------- #
    print("[4] clock() survey across all SMs")
    survey = survey_clocks(config)
    print(f"    max intra-TPC skew: {max(survey.tpc_skews())} cycles")
    print(f"    max intra-GPC skew: {max(survey.gpc_skews())} cycles")
    spread = max(survey.values.values()) - min(survey.values.values())
    print(f"    cross-GPC register spread: {spread:,} cycles")
    print("-> co-located clocks are synchronization-grade "
          "(skew << L2 round trip)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Evaluate the paper's countermeasures (Section 6).

Compares RR / CRR / SRR mux arbitration (Figure 15), runs the covert
channel under each policy, measures SRR's performance tax, probes clock
fuzzing, and checks the MIG / temporal-partitioning placement defenses.

Run with::

    python examples/defense_evaluation.py
"""

from repro.analysis import format_table
from repro.config import small_config
from repro.defense import (
    arbitration_leakage_sweep,
    covert_channel_under_policy,
    colocation_blocked,
    cross_instance_channel_possible,
    make_mig_partition,
    run_clock_fuzz_study,
    srr_performance_cost,
    temporal_partition,
)


def main() -> None:
    config = small_config(timing_noise=0)

    # -- Figure 15: leakage per arbitration policy ---------------------- #
    print("[1] Mux leakage sweep (Figure 15)")
    sweep = arbitration_leakage_sweep(
        config, fractions=(0.0, 0.25, 0.5, 0.75, 1.0), ops=10
    )
    rows = [
        [f"{fraction:.2f}"]
        + [f"{sweep.series[p][i]:.2f}" for p in ("rr", "crr", "srr")]
        for i, fraction in enumerate(sweep.fractions)
    ]
    print(format_table(["SM1 traffic", "RR", "CRR", "SRR"], rows))
    for policy in ("rr", "crr", "srr"):
        print(f"    {policy.upper():4s} leakage slope: "
              f"{sweep.slope(policy):+.2f}")
    print()

    # -- End-to-end: does the covert channel survive? ------------------- #
    print("[2] Covert channel vs arbitration policy")
    noisy = small_config()
    rows = []
    for policy in ("rr", "crr", "age", "srr"):
        outcome = covert_channel_under_policy(noisy, policy, payload_bits=48)
        rows.append(
            [
                policy.upper(),
                f"{outcome.error_rate:.3f}",
                f"{outcome.bandwidth_mbps:.3f}",
                "DEFEATED" if outcome.channel_defeated else "leaks",
            ]
        )
    print(format_table(["policy", "error", "Mbps", "verdict"], rows))
    print()

    # -- SRR's price ----------------------------------------------------- #
    print("[3] SRR performance cost (solo kernels)")
    cost = srr_performance_cost(config, ops=10)
    for label, slowdown in cost.slowdowns.items():
        print(f"    {label:18s}: {slowdown:.2f}x")
    print()

    # -- Clock fuzzing ---------------------------------------------------- #
    print("[4] Clock fuzzing (weaker defense)")
    study = run_clock_fuzz_study(
        noisy, amplitudes=(0, 32, 8192), payload_bits=32
    )
    print(format_table(
        ["fuzz (cycles)", "error rate", "Mbps"],
        zip(study.amplitudes, study.error_rates, study.bandwidths_mbps),
    ))
    broken = study.breaking_amplitude()
    print(f"    channel breaks at fuzz ≈ {broken} cycles "
          f"(small fuzz is absorbed by the coarse resync)\n")

    # -- SRR cost across the benign workload suite ------------------------- #
    print("[3b] SRR cost spectrum (benign workload suite)")
    from repro.defense import srr_workload_cost_study

    spectrum = srr_workload_cost_study(config, ops=40)
    print(format_table(
        ["workload", "SRR / RR time"],
        sorted(spectrum.slowdowns.items(), key=lambda kv: kv[1]),
    ))
    print()

    # -- Detection (GPUGuard-style) ---------------------------------------- #
    print("[4b] Contention-anomaly detection (GPUGuard-style)")
    from repro.defense import run_detection_study

    report = run_detection_study(noisy, train_seeds=(1, 2),
                                 test_seeds=(11, 12))
    print(f"    detection rate : {report.detection_rate:.2f}")
    print(f"    false positives: {report.false_positive_rate:.3f}")
    print(f"    features       : {', '.join(sorted(report.model.stumps))}\n")

    # -- Placement defenses ------------------------------------------------ #
    print("[5] Placement defenses")
    plan = temporal_partition(config, ["trojan", "spy"], level="tpc")
    print(f"    temporal partitioning blocks co-location: "
          f"{colocation_blocked(config, plan, 'trojan', 'spy')}")
    instances = make_mig_partition(config, gpcs_per_instance=1)
    print(f"    MIG cross-instance channel possible: "
          f"{cross_instance_channel_possible(config, instances, 0, 1)}")
    print(f"    MIG same-instance (MPS) channel possible: "
          f"{cross_instance_channel_possible(config, instances, 0, 0)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Robust channel variants: noise, coding, clock-free sync, and MPS.

Exercises the extension modules around the core attack:

1. **Third-kernel noise** (Section 5): a co-scheduled kernel with a
   growing L2 footprint, from harmless to channel-killing.
2. **Forward error correction**: running the channel fast and dirty
   (iterations=1) and repairing it with Hamming(7,4).
3. **Handshake synchronization** (Section 6): a clock-free channel that
   survives clock fuzzing.
4. **MPS-style launches** (Section 2.2): two processes with a large
   launch skew, aligned by a one-time wide-period synchronization.

Run with::

    python examples/robust_channel_variants.py
"""

import random

from repro import small_config
from repro.analysis import format_table
from repro.channel import (
    ChannelParams,
    HandshakeTpcChannel,
    TpcCovertChannel,
    run_noise_study,
    transmit_coded,
)


def main() -> None:
    rng = random.Random(2021)
    bits = [rng.randint(0, 1) for _ in range(40)]

    # -- 1. Third-kernel interference ----------------------------------- #
    print("[1] Third-kernel noise (Section 5)")
    study = run_noise_study(
        small_config(),
        footprint_fractions=(0.0, 0.05, 2.0),
        payload_bits=32,
        channels=[0, 1],
    )
    print(format_table(
        ["interferer", "error rate", "Mbps"],
        [(p.label, p.error_rate, p.bandwidth_mbps) for p in study],
    ))
    print("    -> an L2-scale interferer makes the channel infeasible\n")

    # -- 2. Error correction --------------------------------------------- #
    print("[2] Forward error correction on a noisy operating point")
    noisy = small_config(timing_noise=160)
    fast = TpcCovertChannel(noisy, params=ChannelParams(iterations=1))
    fast.calibrate(training_symbols=24)
    uncoded = transmit_coded(fast, bits, scheme="none")
    hamming = transmit_coded(fast, bits, scheme="hamming74")
    repetition = transmit_coded(fast, bits, scheme="repetition")
    print(format_table(
        ["scheme", "payload error", "effective Mbps"],
        [
            ("uncoded", uncoded.decoded_error_rate,
             uncoded.effective_bandwidth_mbps),
            ("Hamming(7,4)", hamming.decoded_error_rate,
             hamming.effective_bandwidth_mbps),
            ("repetition-3", repetition.decoded_error_rate,
             repetition.effective_bandwidth_mbps),
        ],
    ))
    print()

    # -- 3. Clock-free synchronization under fuzzing ---------------------- #
    print("[3] Handshake sync vs clock fuzzing (Section 6)")
    fuzzed = small_config(clock_fuzz=8192)
    clocked = TpcCovertChannel(fuzzed)
    clocked.calibrate()
    clocked_result = clocked.transmit(bits)
    handshake = HandshakeTpcChannel(fuzzed)
    handshake.calibrate()
    handshake_result = handshake.transmit(bits)
    print(format_table(
        ["channel", "error rate under fuzz=8192"],
        [
            ("clock-synchronized", clocked_result.error_rate),
            ("handshake/preamble", handshake_result.error_rate),
        ],
    ))
    print("    -> fuzzing breaks the clocked channel, not the fallback\n")

    # -- 4. MPS-style launch skew ----------------------------------------- #
    print("[4] MPS launches (Section 2.2)")
    params = ChannelParams(initial_sync_mask=(1 << 16) - 1)
    rows = []
    for skew in (0, 2000, 10000):
        channel = TpcCovertChannel(small_config(), params=params)
        channel.mps_launch_skew = skew
        channel.calibrate()
        result = channel.transmit(bits)
        rows.append((f"{skew} cycles", result.error_rate))
    print(format_table(["launch skew", "error rate"], rows))
    print("    -> the one-time wide-period sync absorbs process skew")


if __name__ == "__main__":
    main()

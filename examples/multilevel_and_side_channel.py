#!/usr/bin/env python3
"""Advanced channel variants from Section 5.

1. **Multi-level channel** (Figure 14): the sender modulates the *degree*
   of contention (0/8/16/32 unique lines per warp) to pack 2 bits per
   slot, trading error rate for ~1.6x bandwidth.
2. **Coalescing study** (Figure 13): how memory coalescing by either side
   degrades or destroys the channel.
3. **L1-miss side channel**: the same leak, used non-cooperatively to
   estimate a co-located victim's L2 traffic.

Run with::

    python examples/multilevel_and_side_channel.py
"""

import random

from repro.analysis import format_table
from repro.config import small_config
from repro.channel import (
    MultiLevelTpcChannel,
    TpcCovertChannel,
    measure_l1_miss_leakage,
    run_coalescing_study,
)


def main() -> None:
    config = small_config()
    rng = random.Random(2021)

    # -- Multi-level channel (Figure 14) -------------------------------- #
    print("[1] Multi-level channel: 2 bits per slot")
    channel = MultiLevelTpcChannel(config)
    means = channel.level_means(repeats=6)
    print(format_table(
        ["symbol", "sender lines", "receiver latency (cycles)"],
        [(s, lines, mean)
         for s, (lines, mean) in enumerate(zip(channel.levels, means))],
    ))
    channel.calibrate_levels()
    symbols = [rng.randrange(4) for _ in range(48)]
    multi = channel.transmit(symbols)

    binary = TpcCovertChannel(config)
    binary.calibrate()
    bits = [rng.randint(0, 1) for _ in range(48)]
    base = binary.transmit(bits)
    print(f"    binary channel : {base.bandwidth_mbps:.3f} Mbps, "
          f"error {base.error_rate:.3f}")
    print(f"    4-level channel: {multi.bandwidth_mbps:.3f} Mbps "
          f"({multi.bandwidth_mbps / base.bandwidth_mbps:.2f}x), "
          f"error {multi.error_rate:.3f}\n")

    # -- Coalescing matrix (Figure 13) ----------------------------------- #
    print("[2] Memory coalescing impact on error rate")
    study = run_coalescing_study(config, payload_bits=48)
    print(format_table(["configuration", "error rate"], study.rows()))
    print("    -> a coalesced sender cannot establish the channel\n")

    # -- Side channel: estimating a victim's L1 misses ------------------- #
    print("[3] L1-miss side channel (non-cooperative victim)")
    trace = measure_l1_miss_leakage(small_config(timing_noise=0))
    print(format_table(
        ["victim L1 misses", "spy probe latency"],
        zip(trace.miss_counts, trace.spy_latencies),
    ))
    print(f"    correlation: {trace.correlation():.3f}")
    slope, intercept = trace.fit()
    probe = trace.spy_latencies[len(trace.spy_latencies) // 2]
    print(f"    linear fit: latency = {slope:.1f} * misses + {intercept:.0f}")
    print(f"    a reading of {probe:.0f} cycles implies "
          f"~{trace.estimate_misses(probe):.1f} victim misses\n")

    # -- AES key recovery: the side channel weaponized -------------------- #
    print("[4] AES last-round key recovery (Jiang-style, via the NoC)")
    from repro.channel import run_aes_key_recovery

    attack = run_aes_key_recovery(
        small_config(timing_noise=0), key_byte=0x3C, num_batches=24,
        measure_reps=1,
    )
    top = sorted(attack.correlations.items(), key=lambda kv: -kv[1])[:4]
    print(format_table(
        ["key guess", "correlation"],
        [(f"0x{g:02X}", c) for g, c in top],
    ))
    print(f"    true key byte 0x{attack.true_key_byte:02X} recovered: "
          f"{attack.success} (rank {attack.rank_of_true_key()})")


if __name__ == "__main__":
    main()

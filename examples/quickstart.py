#!/usr/bin/env python3
"""Quickstart: exfiltrate a message over the TPC covert channel.

This is the headline attack of the paper in ~30 lines: a trojan (sender)
and a spy (receiver) kernel are co-located on the two SMs of each TPC by
the thread-block scheduler, synchronize through their SM clock registers,
and communicate by modulating contention on the shared TPC injection
channel.

Run with::

    python examples/quickstart.py
"""

from repro import small_config
from repro.channel import TpcCovertChannel


def main() -> None:
    # A scaled-down GPU keeps the demo fast; swap in repro.VOLTA_V100 for
    # the full Table-1 configuration.
    config = small_config()
    print(f"GPU: {config.num_gpcs} GPCs / {config.num_tpcs} TPCs / "
          f"{config.num_sms} SMs @ {config.core_clock_mhz} MHz")

    # Use every TPC as a parallel bit pipe (the multi-TPC attack).
    channel = TpcCovertChannel.all_channels(config)

    # Calibrate the receiver's latency threshold on a known pattern.
    threshold = channel.calibrate()
    print(f"calibrated decision threshold: {threshold:.0f} cycles "
          f"across {channel.num_channels} parallel channels")

    secret = b"NoC covert channel!"
    result = channel.transmit_bytes(secret)

    # Reassemble the received bit stream.
    value = 0
    for bit in result.received_symbols:
        value = (value << 1) | bit
    recovered = value.to_bytes(len(secret), "big")

    print(f"sent      : {secret!r}")
    print(f"recovered : {recovered!r}")
    print(f"bandwidth : {result.bandwidth_mbps:.3f} Mbps "
          f"(core-clock time {result.seconds * 1e6:.1f} us)")
    print(f"error rate: {result.error_rate:.4f}")


if __name__ == "__main__":
    main()

"""Section 5 "Side Channel Attack": estimating a victim's L1 misses.

Paper claim: because NoC channel contention is linear in the co-located
SM's L2 traffic, a spy can use the covert-channel leak as a side channel
to measure "the amount of L1 miss" of a victim — the primitive behind
cache-timing attacks such as AES key recovery.
"""

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100
from repro.channel import measure_l1_miss_leakage


@pytest.mark.benchmark(group="sec5")
def test_sec5_l1_miss_side_channel(once):
    config = VOLTA_V100.replace(timing_noise=0)
    trace = once(
        measure_l1_miss_leakage, config,
        miss_counts=(0, 4, 8, 12, 16, 20, 24, 28, 32),
        total_ops=32, probe_ops=8,
    )
    print("\nSection 5 — spy latency vs victim L1-miss count")
    print(format_table(
        ["victim L1 misses", "spy latency (cycles)"],
        zip(trace.miss_counts, trace.spy_latencies),
    ))
    correlation = trace.correlation()
    slope, intercept = trace.fit()
    print(f"Pearson correlation: {correlation:.3f}")
    print(f"linear fit: latency = {slope:.2f} * misses + {intercept:.0f}")

    assert correlation > 0.85  # "linear correlation" per the paper
    assert slope > 0
    # The fit inverts: a quiet victim's reading maps to few misses.
    assert trace.estimate_misses(trace.spy_latencies[0]) < 8
    assert trace.estimate_misses(trace.spy_latencies[-1]) > 20

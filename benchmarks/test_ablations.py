"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one microarchitectural mechanism and shows which
paper-observed behaviour it is load-bearing for:

* **GPC bandwidth speedup** (``gpc_channel_width``): without it, the GPC
  write path behaves like one more TPC-style bottleneck and the ~15%
  Figure-5b write result becomes a large degradation.
* **Write packet size** (``write_request_flits``): data-less writes no
  longer saturate the TPC channel, flattening Figure 2's 2x contrast.
* **Reply VOQs** (``reply_voq``): with single-FIFO slice replies, head-of
  -line blocking couples the 6 GPC channels and the multi-GPC covert
  channel drowns in cross-channel noise.
* **MSHR depth** (``sm_mshrs``): the GPC read contention of Figure 5b
  scales with the per-SM read window.
"""

import random

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100, small_config
from repro.channel import GpcCovertChannel
from repro.reveng import measure_active_sms


def _tpc_write_ratio(config, ops=8):
    base = measure_active_sms(config, {0}, "write", ops=ops)[0]
    pair = measure_active_sms(config, {0, 1}, "write", ops=ops)[0]
    return pair / base


def _gpc_ratio(config, kind, n_tpcs, ops=6):
    members = config.gpc_members()[0]
    base = measure_active_sms(
        config, {config.tpc_sms(members[0])[0]}, kind, ops=ops
    )[config.tpc_sms(members[0])[0]]
    sms = {config.tpc_sms(t)[0] for t in members[:n_tpcs]}
    probe = config.tpc_sms(members[0])[0]
    return measure_active_sms(config, sms, kind, ops=ops)[probe] / base


@pytest.mark.benchmark(group="ablation")
def test_ablation_gpc_speedup(once):
    """Remove the GPC mux speedup: Figure 5b's gentle write slope dies."""

    def run():
        with_speedup = _gpc_ratio(VOLTA_V100, "write", 7)
        flat = VOLTA_V100.replace(gpc_channel_width=1)
        without = _gpc_ratio(flat, "write", 7)
        return with_speedup, without

    with_speedup, without = once(run)
    print("\nAblation — GPC channel speedup (7 write-streaming TPCs)")
    print(format_table(
        ["configuration", "normalized time"],
        [("speedup x6 (paper)", with_speedup),
         ("no speedup (width 1)", without)],
    ))
    assert with_speedup < 1.3          # the paper's ~15%
    assert without > 3.0               # 7 TPCs over width 1: heavy loss
    assert without > 2 * with_speedup


@pytest.mark.benchmark(group="ablation")
def test_ablation_write_packet_size(once):
    """Data-less writes shrink the receiver's 0/1 contrast.

    With 4-flit (data-carrying) writes, each sender grant delays the
    receiver's single-flit probe requests fourfold; header-only writes
    still split the channel 50/50 but the per-probe delay collapses,
    squeezing the covert channel's decision margin.
    """
    from repro.channel import TpcCovertChannel
    from repro.channel.protocol import ChannelParams

    def contrast(config):
        channel = TpcCovertChannel(
            config, params=ChannelParams(threshold=1.0, sync_period=0)
        )
        measurements, _ = channel._run([[1, 1, 1, 1, 0, 0, 0, 0]])
        series = measurements[0]
        ones = series[:4]
        zeros = series[4:]
        return (sum(ones) / 4) / (sum(zeros) / 4)

    def run():
        quiet = small_config(timing_noise=0)
        fat = contrast(quiet)
        thin = contrast(quiet.replace(write_request_flits=1))
        return fat, thin

    fat, thin = once(run)
    print("\nAblation — write packet size (receiver 1/0 contrast ratio)")
    print(format_table(
        ["write size", "contrast (1-slot / 0-slot latency)"],
        [("4 flits (data-carrying)", fat), ("1 flit (header only)", thin)],
    ))
    assert fat > 1.25
    assert thin < fat - 0.1


@pytest.mark.benchmark(group="ablation")
def test_ablation_reply_voq(once):
    """Single-FIFO replies: HOL blocking wrecks the multi-GPC channel."""

    def run():
        rng = random.Random(6)
        bits = [rng.randint(0, 1) for _ in range(60)]
        results = {}
        for voq in (True, False):
            config = VOLTA_V100.replace(reply_voq=voq)
            channel = GpcCovertChannel.all_channels(config)
            channel.calibrate(training_symbols=12)
            results[voq] = channel.transmit(bits).error_rate
        return results

    results = once(run)
    print("\nAblation — reply-path buffering (6-GPC covert channel)")
    print(format_table(
        ["reply buffering", "error rate"],
        [("per-GPC VOQs", results[True]),
         ("single FIFO (HOL)", results[False])],
    ))
    assert results[True] <= 0.08
    assert results[False] > results[True] + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_mshr_depth(once):
    """Halving the read window halves GPC read pressure (Figure 5b)."""

    def run():
        deep = _gpc_ratio(VOLTA_V100, "read", 7)
        shallow = _gpc_ratio(VOLTA_V100.replace(sm_mshrs=16), "read", 7)
        return deep, shallow

    deep, shallow = once(run)
    print("\nAblation — MSHR depth (7 read-streaming TPCs)")
    print(format_table(
        ["MSHRs per SM", "normalized time"],
        [("64 (paper-calibrated)", deep), ("16", shallow)],
    ))
    assert deep == pytest.approx(2.0, rel=0.2)
    assert shallow < deep - 0.4


@pytest.mark.benchmark(group="ablation")
def test_ablation_coding_operating_points(once):
    """Coding trade: iterations=1 + Hamming vs iterations=4 uncoded."""
    from repro.channel import TpcCovertChannel, transmit_coded
    from repro.channel.protocol import ChannelParams

    def run():
        config = small_config(timing_noise=160)
        rng = random.Random(9)
        payload = [rng.randint(0, 1) for _ in range(40)]
        fast = TpcCovertChannel(config, params=ChannelParams(iterations=1))
        fast.calibrate(training_symbols=24)
        coded = transmit_coded(fast, payload, scheme="hamming74")
        slow = TpcCovertChannel(config, params=ChannelParams(iterations=4))
        slow.calibrate(training_symbols=24)
        uncoded = transmit_coded(slow, payload, scheme="none")
        return coded, uncoded

    coded, uncoded = once(run)
    print("\nAblation — error correction as an operating point")
    print(format_table(
        ["operating point", "payload error", "effective Mbps"],
        [
            ("iterations=1 + Hamming(7,4)", coded.decoded_error_rate,
             coded.effective_bandwidth_mbps),
            ("iterations=4, uncoded", uncoded.decoded_error_rate,
             uncoded.effective_bandwidth_mbps),
        ],
    ))
    assert coded.decoded_error_rate <= coded.raw_error_rate
    assert coded.effective_bandwidth_mbps > uncoded.effective_bandwidth_mbps

"""Figure 15 + Section 6: arbitration policies as a countermeasure.

Paper result (GPGPU-Sim + BookSim study): with baseline RR arbitration
the probe SM's time grows linearly with the co-runner's traffic; CRR
behaves the same (coarser arbitration, same bandwidth sharing); SRR is
completely flat — the covert channel is removed — at the cost of up to
~2x bandwidth for memory-intensive kernels and negligible cost for
compute-intensive ones.
"""

import pytest

from repro.analysis import format_table
from repro.config import small_config
from repro.defense import (
    arbitration_leakage_sweep,
    covert_channel_under_policy,
    srr_performance_cost,
)


@pytest.mark.benchmark(group="fig15")
def test_fig15_arbitration_comparison(once):
    config = small_config(timing_noise=0)
    sweep = once(
        arbitration_leakage_sweep, config,
        fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0), ops=10,
    )
    print("\nFigure 15 — SM0 time vs SM1 traffic per arbitration policy")
    rows = [
        [f"{fraction:.1f}"]
        + [f"{sweep.series[p][i]:.2f}" for p in ("rr", "crr", "srr")]
        for i, fraction in enumerate(sweep.fractions)
    ]
    print(format_table(["SM1 fraction", "RR", "CRR", "SRR"], rows))
    for policy in ("rr", "crr", "srr"):
        print(f"  {policy.upper():4s} slope: {sweep.slope(policy):+.3f}")

    assert sweep.slope("rr") > 0.6
    assert sweep.slope("crr") > 0.4          # CRR does not mitigate
    assert abs(sweep.slope("srr")) < 0.03    # SRR removes the leak
    assert sweep.series["rr"][-1] == pytest.approx(2.0, rel=0.15)
    assert max(sweep.series["srr"]) - min(sweep.series["srr"]) < 0.05


@pytest.mark.benchmark(group="fig15")
def test_section6_covert_channel_vs_policy(once):
    config = small_config()

    def run():
        return {
            policy: covert_channel_under_policy(
                config, policy, payload_bits=48
            )
            for policy in ("rr", "crr", "age", "srr")
        }

    outcomes = once(run)
    print("\nSection 6 — end-to-end covert channel per policy")
    print(format_table(
        ["policy", "error rate", "Mbps", "verdict"],
        [
            (
                policy.upper(),
                outcome.error_rate,
                outcome.bandwidth_mbps,
                "DEFEATED" if outcome.channel_defeated else "leaks",
            )
            for policy, outcome in outcomes.items()
        ],
    ))
    assert not outcomes["rr"].channel_defeated
    assert not outcomes["crr"].channel_defeated
    assert not outcomes["age"].channel_defeated  # global fairness ≠ isolation
    assert outcomes["srr"].channel_defeated


@pytest.mark.benchmark(group="fig15")
def test_section6_srr_performance_cost(once):
    config = small_config(timing_noise=0)
    report = once(srr_performance_cost, config, ops=10)
    print("\nSection 6 — SRR slowdown for solo kernels")
    print(format_table(
        ["workload", "SRR / RR time"],
        list(report.slowdowns.items()),
    ))
    assert report.slowdowns["memory-intensive"] == pytest.approx(2.0, rel=0.15)
    assert report.slowdowns["compute-intensive"] < 1.25


@pytest.mark.benchmark(group="fig15")
def test_section6_srr_cost_spectrum(once):
    """SRR's tax across the whole benign workload suite: compute-bound
    kernels pay nothing, bandwidth-bound streaming writes pay the full
    2x — the performance trade-off Section 6 concludes with."""
    from repro.defense import srr_workload_cost_study

    report = once(srr_workload_cost_study, small_config(), ops=40)
    print("\nSection 6 — SRR slowdown across benign workloads")
    print(format_table(
        ["workload", "SRR / RR time"],
        sorted(report.slowdowns.items(), key=lambda kv: kv[1]),
    ))
    assert report.slowdowns["compute"] == pytest.approx(1.0, abs=0.05)
    assert report.slowdowns["write_stream"] == pytest.approx(2.0, rel=0.1)

"""Figure 9: timing-slot operation with and without local resync.

Paper result: transmitting '0101...' with timing slots alone lets slot
overruns accumulate until '1' bits stop producing visible contention
(panel a); adding the coarse clock-register synchronization every N bits
resets the drift and keeps the alternating latency pattern intact
(panel b).
"""

import pytest

from repro.analysis import format_series
from repro.config import small_config
from repro.analysis.figures import fig9_latency_trace


def _contrast(bits, trace, tail_only=False):
    pairs = list(zip(trace, bits))
    if tail_only:
        pairs = pairs[len(pairs) // 2 :]
    ones = [v for v, b in pairs if b]
    zeros = [v for v, b in pairs if not b]
    return (sum(ones) / len(ones)) / (sum(zeros) / len(zeros))


@pytest.mark.benchmark(group="fig09")
def test_fig09a_timing_slot_only_drifts(once):
    bits, trace = once(
        fig9_latency_trace, small_config(), with_sync=False, num_bits=30
    )
    print("\nFigure 9(a) — '0101..' with timing slots only (drift)")
    print(format_series(
        list(range(1, len(trace) + 1)), [round(v) for v in trace],
        "bit sequence", "receiver latency",
    ))
    tail = _contrast(bits, trace, tail_only=True)
    print(f"late-half 1/0 contrast: {tail:.3f} (drift erodes it)")
    # Drift visible: some late '1' slots read as low as '0' slots.
    ones = [v for v, b in zip(trace, bits) if b]
    zeros = [v for v, b in zip(trace, bits) if not b]
    assert min(ones[len(ones) // 2 :]) < max(zeros) * 1.05


@pytest.mark.benchmark(group="fig09")
def test_fig09b_with_local_sync(once):
    bits, trace = once(
        fig9_latency_trace, small_config(), with_sync=True, num_bits=30
    )
    print("\nFigure 9(b) — '0101..' with timing slots + local sync")
    print(format_series(
        list(range(1, len(trace) + 1)), [round(v) for v in trace],
        "bit sequence", "receiver latency",
    ))
    contrast = _contrast(bits, trace)
    tail = _contrast(bits, trace, tail_only=True)
    print(f"overall 1/0 contrast: {contrast:.3f}; late-half: {tail:.3f}")
    # The alternating pattern survives to the end of the message.
    assert contrast > 1.1
    assert tail > 1.1
    ones = [v for v, b in zip(trace, bits) if b]
    zeros = [v for v, b in zip(trace, bits) if not b]
    assert min(ones) > max(zeros) * 0.98

"""Engine-strategy microbenchmark: naive full-tick loop vs active-set.

Thin wrapper over :func:`repro.runner.bench.bench_engine` — times the same
fixed seeded workloads under ``engine_strategy="naive"`` and ``"active"``,
asserts bit-identical results, and writes ``BENCH_engine.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_engine.py [--scale medium]

or via the CLI (equivalent)::

    python -m repro bench

or under the pytest-benchmark harness::

    pytest benchmarks/bench_engine.py --benchmark-only -s
"""

import argparse
import json
import sys

from repro.cli import SCALES
from repro.runner import bench_engine


def test_engine_speedup(once):
    """Active-set scheduling must be >=2x faster and cycle-exact."""
    config = SCALES["small"]()
    report = once(bench_engine, config, num_bits=24)
    assert report["min_speedup"] >= 2.0, report
    for entry in report["workloads"].values():
        assert entry["identical"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--bits", type=int, default=24)
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    report = bench_engine(
        SCALES[args.scale](), num_bits=args.bits, output=args.output
    )
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Section 5 "Other GPU Architectures": the attack generalizes.

The paper confirmed the same covert channels on Kepler, Pascal, and
Turing — the only differences being the hierarchy parameters and the
thread-block scheduling details.  This benchmark runs the core attack on
the Pascal- and Turing-like presets alongside Volta and reports the same
three-line summary per architecture.
"""

import random

import pytest

from repro.analysis import format_table
from repro.config import ARCHITECTURES
from repro.channel import TpcCovertChannel
from repro.reveng import measure_active_sms


@pytest.mark.benchmark(group="cross-arch")
def test_attack_on_every_architecture(once):
    def run():
        rng = random.Random(6)
        bits = [rng.randint(0, 1) for _ in range(16)]
        rows = []
        for name, config in sorted(ARCHITECTURES.items()):
            baseline = measure_active_sms(config, {0}, "write", ops=6)[0]
            paired = measure_active_sms(config, {0, 1}, "write", ops=6)[0]
            channel = TpcCovertChannel(config)
            channel.calibrate(training_symbols=12)
            result = channel.transmit(bits)
            rows.append(
                (
                    name,
                    f"{config.num_gpcs}x{config.num_tpcs}x{config.num_sms}",
                    paired / baseline,
                    result.bandwidth_mbps,
                    result.error_rate,
                )
            )
        return rows

    rows = once(run)
    print("\nSection 5 — the TPC channel across GPU architectures")
    print(format_table(
        ["architecture", "GPC x TPC x SM", "TPC write contention",
         "channel Mbps", "error"],
        rows,
    ))
    for name, _shape, contention, _mbps, error in rows:
        assert contention == pytest.approx(2.0, rel=0.15), name
        assert error <= 0.1, name

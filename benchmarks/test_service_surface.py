"""Benchmark: sweep-service dedup leverage and surface query answering.

Measures the service's whole value proposition: N overlapping requests
over a shared grid cost one simulation per unique point (dedup factor
printed), and a second batch over the same grid answers from the
artifact store alone — per-query latency is surface arithmetic, not
simulation.
"""

import pytest

from repro.analysis import format_table
from repro.config import small_config
from repro.metrics.registry import MetricsRegistry
from repro.runner import CapacitySurface, ResultCache, SimJob, serve_requests

FIG10_FN = "repro.runner.workloads.fig10_point"


def _grid_jobs(cfg, grid):
    return [
        SimJob(
            FIG10_FN,
            cfg,
            {
                "kind": "tpc",
                "iteration_count": n,
                "bits_per_channel": 4,
                "seed": 1021 + i,
            },
        )
        for i, n in enumerate(grid)
    ]


@pytest.mark.benchmark(group="service")
def test_service_dedup_and_surface_queries(once, tmp_path):
    cfg = small_config(timing_noise=0)
    grid = [1, 2, 4]
    jobs = _grid_jobs(cfg, grid)
    # Four overlapping requests: full grid, two rotations, a subset.
    requests = [jobs, jobs[1:] + jobs[:1], jobs[::-1], jobs[:2]]
    cache = ResultCache(tmp_path / "store", metrics=MetricsRegistry())

    def sweep():
        return serve_requests(
            requests,
            cache=cache,
            execution="supervised",
            shards=2,
            metrics=MetricsRegistry(),
            stagger_s=0.002,
        )

    per_request, manifest = once(sweep)
    total_slots = sum(len(r) for r in requests)
    print("\nSweep service: overlapping-request dedup")
    print(format_table(
        ["metric", "value"],
        [
            ("requests", len(requests)),
            ("job slots submitted", total_slots),
            ("unique points simulated", manifest["dispatched"]),
            ("late-subscriber attaches", manifest["attached"]),
            ("store hits", manifest["cache_hit"]),
            ("dedup factor", f"{total_slots / manifest['dispatched']:.1f}x"),
        ],
    ))
    assert manifest["dispatched"] == len(grid)
    assert manifest["failed"] == 0

    # Second batch: pure store replay, zero simulation.
    (replay,), manifest2 = serve_requests(
        [jobs],
        cache=cache,
        execution="supervised",
        shards=2,
        metrics=MetricsRegistry(),
    )
    assert manifest2["dispatched"] == 0
    assert manifest2["cache_hit"] == len(grid)

    surface = CapacitySurface.from_rows(replay, metrics=MetricsRegistry())
    queries = [1, 1.5, 2, 3, 4, 6]
    answers = [surface.predict(iterations=q) for q in queries]
    print(format_table(
        ["iterations", "bandwidth (kbps)", "source", "confidence"],
        [
            (q, f"{a.bandwidth_kbps:.1f}", a.source, f"{a.confidence:.2f}")
            for q, a in zip(queries, answers)
        ],
    ))
    # Bandwidth falls with iteration count across the answered range.
    bandwidths = [a.bandwidth_kbps for a in answers]
    assert bandwidths == sorted(bandwidths, reverse=True)

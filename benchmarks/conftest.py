"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment once (these are simulations, not microbenchmarks, so
``rounds=1``), prints the same rows/series the paper reports, and asserts
the qualitative shape (who wins, by roughly what factor, where the
crossover falls).

Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.runner import ResultCache


@pytest.fixture
def result_cache(tmp_path):
    """A throwaway on-disk result cache for runner-backed benchmarks."""
    return ResultCache(tmp_path / "repro_cache")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner

"""Benchmarks for the extension studies (Section 5/6 follow-ups).

* GPUGuard-style contention-anomaly detection: detection rate vs false
  positives on held-out covert/benign traces.
* AES last-round key recovery through the NoC side channel.
* Third-kernel noise sweep (Section 5, Impact of Noise).
* Handshake synchronization vs clock fuzzing (Section 6 follow-up).
"""

import random

import pytest

from repro.analysis import format_table
from repro.config import small_config
from repro.channel import (
    HandshakeTpcChannel,
    TpcCovertChannel,
    run_aes_key_recovery,
    run_noise_study,
)
from repro.defense import run_detection_study


@pytest.mark.benchmark(group="extensions")
def test_detection_study(once):
    report = once(run_detection_study, small_config())
    print("\nGPUGuard-style detection (decision stumps on NoC telemetry)")
    print(format_table(
        ["metric", "value"],
        [
            ("detection rate",
             f"{report.detection_rate:.2f} "
             f"({report.covert_detected}/{report.covert_total})"),
            ("false-positive rate",
             f"{report.false_positive_rate:.3f} "
             f"({report.false_positives}/{report.benign_total})"),
            ("features used", ", ".join(sorted(report.model.stumps))),
        ],
    ))
    assert report.detection_rate >= 0.75
    assert report.false_positive_rate <= 0.15


@pytest.mark.benchmark(group="extensions")
def test_aes_key_recovery(once):
    result = once(
        run_aes_key_recovery,
        small_config(timing_noise=0),
        key_byte=0x3C,
        num_batches=24,
        measure_reps=1,
    )
    top = sorted(
        result.correlations.items(), key=lambda kv: -kv[1]
    )[:5]
    print("\nAES last-round key recovery via NoC contention")
    print(format_table(
        ["guess", "correlation"],
        [(f"0x{g:02X}", c) for g, c in top],
    ))
    print(f"true key byte: 0x{result.true_key_byte:02X}, "
          f"recovered: 0x{result.recovered_key_byte:02X} "
          f"(rank {result.rank_of_true_key()})")
    assert result.success
    assert result.correlations[result.true_key_byte] > 0.9


@pytest.mark.benchmark(group="extensions")
def test_third_kernel_noise_sweep(once):
    points = once(
        run_noise_study,
        small_config(),
        footprint_fractions=(0.0, 0.05, 2.0),
        payload_bits=32,
        channels=[0, 1],
    )
    print("\nSection 5 — third-kernel interference")
    print(format_table(
        ["interferer footprint", "error rate", "Mbps"],
        [(p.label, p.error_rate, p.bandwidth_mbps) for p in points],
    ))
    assert points[0].error_rate <= 0.05
    assert points[1].error_rate <= 0.15
    assert points[2].error_rate > 0.25  # L2 thrashing: infeasible


@pytest.mark.benchmark(group="extensions")
def test_handshake_vs_clock_fuzz(once):
    def run():
        rng = random.Random(4)
        bits = [rng.randint(0, 1) for _ in range(24)]
        fuzzed = small_config(clock_fuzz=8192)
        clocked = TpcCovertChannel(fuzzed)
        clocked.calibrate()
        clocked_error = clocked.transmit(bits).error_rate
        handshake = HandshakeTpcChannel(fuzzed)
        handshake.calibrate()
        handshake_error = handshake.transmit(bits).error_rate
        return clocked_error, handshake_error

    clocked_error, handshake_error = once(run)
    print("\nSection 6 — clock fuzzing vs handshake synchronization")
    print(format_table(
        ["channel", "error under fuzz=8192"],
        [
            ("clock-synchronized", clocked_error),
            ("handshake/preamble", handshake_error),
        ],
    ))
    assert clocked_error > 0.2       # fuzzing kills the clocked channel
    assert handshake_error <= 0.15   # ...but not the fallback

"""Figure 6: distribution of clock() values across the 80 SMs.

Paper result: SMs in one TPC read nearly identical values, TPCs within a
GPC stay within ~15 cycles, while different GPCs differ by billions of
cycles (up to ~4x).  Averaged over 100 runs, intra-TPC skew stays under 5
cycles and intra-GPC skew under 15 — negligible against the ~200-250
cycle L2 round trip, which is what makes handshake-free synchronization
possible.
"""

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100
from repro.reveng import repeated_skew_statistics, survey_clocks


@pytest.mark.benchmark(group="fig06")
def test_fig06_clock_survey(once):
    config = VOLTA_V100
    survey = once(survey_clocks, config)
    values = survey.values
    print("\nFigure 6 — clock() per SM (first 16 SMs shown)")
    print(format_table(
        ["SM id", "clock()"],
        [(sm, values[sm]) for sm in range(16)],
    ))
    tpc_skews = survey.tpc_skews()
    gpc_skews = survey.gpc_skews()
    spread = max(values.values()) - min(values.values())
    print(f"max intra-TPC skew : {max(tpc_skews)} cycles")
    print(f"max intra-GPC skew : {max(gpc_skews)} cycles")
    print(f"cross-GPC spread   : {spread:,} cycles")

    assert max(tpc_skews) <= 5 + 2 * config.clock_skew.read_jitter
    assert max(gpc_skews) <= 15 + 2 * config.clock_skew.read_jitter
    assert spread > 1_000_000  # GPCs differ wildly (the Fig 6 clusters)


@pytest.mark.benchmark(group="fig06")
def test_fig06_hundred_run_statistics(once):
    config = VOLTA_V100
    stats = once(repeated_skew_statistics, config, runs=100)
    print("\nSection 4.1 — skew averaged over 100 surveys")
    print(format_table(
        ["scope", "avg skew (cycles)", "paper bound"],
        [
            ("within TPC", stats["avg_tpc_skew"], "< 5"),
            ("within GPC", stats["avg_gpc_skew"], "< 15"),
        ],
    ))
    jitter = 2 * config.clock_skew.read_jitter
    assert stats["avg_tpc_skew"] < 5 + jitter
    assert stats["avg_gpc_skew"] < 15 + jitter
    assert stats["avg_tpc_skew"] <= stats["avg_gpc_skew"]

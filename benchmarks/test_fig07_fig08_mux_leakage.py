"""Figures 7 and 8: interconnect channel leakage through the shared mux.

Figure 7 is the concept (contention when communicating '1'); Figure 8 is
its measurement: SM0's execution time grows *linearly* with the traffic
of a co-runner that shares its mux (SM1) and stays flat for one that does
not (SM12) — the direct, predictable leakage the covert channel encodes
bits into.
"""

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100
from repro.reveng import mux_sharing_sweep


@pytest.mark.benchmark(group="fig08")
def test_fig08_mux_sharing_leakage(once):
    config = VOLTA_V100.replace(timing_noise=0)
    sweep = once(
        mux_sharing_sweep, config,
        probe_sm=0, sharing_sm=1, non_sharing_sm=12,
        fractions=(0.0, 0.12, 0.24, 0.36, 0.48, 0.6, 0.72, 0.84, 0.96),
        ops=10,
    )
    print("\nFigure 8 — SM0 time vs co-runner's memory-access fraction")
    rows = [
        (f"{fraction:.2f}", sweep.series["SM1"][i], sweep.series["SM12"][i])
        for i, fraction in enumerate(sweep.fractions)
    ]
    print(format_table(["fraction", "with SM1", "with SM12"], rows))
    print(f"slope with SM1 (shares mux): {sweep.slope('SM1'):+.3f}")
    print(f"slope with SM12 (different TPC): {sweep.slope('SM12'):+.3f}")

    # Linear growth toward 2x for the mux-sharing SM; flat otherwise.
    assert sweep.slope("SM1") == pytest.approx(1.0, abs=0.25)
    assert abs(sweep.slope("SM12")) < 0.05
    assert sweep.series["SM1"][-1] == pytest.approx(1.96, rel=0.1)
    series = sweep.series["SM1"]
    assert all(b >= a - 0.03 for a, b in zip(series, series[1:]))

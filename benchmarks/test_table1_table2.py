"""Tables 1 and 2.

Table 1 is the simulation configuration (verified field-by-field against
the paper's parameters).  Table 2 is the qualitative/quantitative channel
comparison; the benchmark measures this work's four rows — the TPC and
GPC channels, single and parallel — and checks the orderings the paper
reports (parallel/local/direct channels; TPC above GPC; multi-channel
variants the fastest; near-zero error except multi-GPC's small error).
"""

import pytest

from repro.analysis import format_table, table2_summary
from repro.config import VOLTA_V100


@pytest.mark.benchmark(group="table1")
def test_table1_simulation_configuration(once):
    config = once(lambda: VOLTA_V100)
    rows = [
        ("Core", f"{config.core_clock_mhz} MHz, SIMT width="
                 f"{config.simt_width}, {config.num_tpcs} TPCs, "
                 f"{config.sms_per_tpc} SMs per TPC"),
        ("Caches", f"{config.l1_size_bytes // 1024}KB L1/Shmem per SM, "
                   f"{config.num_l2_slices} L2 slices, "
                   f"{config.l2_slice_bytes // 1024}KB per slice"),
        ("Memory", f"{config.num_memory_controllers} MCs, HBM2, "
                   f"tCL={config.dram.t_cl}, tRP={config.dram.t_rp}, "
                   f"tRC={config.dram.t_rc}, tRAS={config.dram.t_ras}, "
                   f"tRCD={config.dram.t_rcd}, tRRD={config.dram.t_rrd}"),
        ("Interconnect", f"{config.core_clock_mhz} MHz crossbar, "
                         f"flit_size={config.flit_bytes}, "
                         f"num_vcs={config.num_vcs}, "
                         f"subnets={config.num_subnets}"),
    ]
    print("\nTable 1 — simulation configuration")
    print(format_table(["component", "parameters"], rows))

    assert config.core_clock_mhz == 1200
    assert config.simt_width == 32
    assert config.num_tpcs == 40 and config.sms_per_tpc == 2
    assert config.num_l2_slices == 48
    assert config.l2_slice_bytes == 96 * 1024
    assert config.l1_size_bytes == 128 * 1024
    assert config.num_memory_controllers == 24
    assert (config.dram.t_cl, config.dram.t_rp, config.dram.t_rc,
            config.dram.t_ras, config.dram.t_rcd, config.dram.t_rrd) == (
        12, 12, 40, 28, 12, 3)
    assert config.flit_bytes == 40
    assert config.num_vcs == 1
    assert config.num_subnets == 2


@pytest.mark.benchmark(group="table2")
def test_table2_this_work_rows(once):
    rows = once(table2_summary, VOLTA_V100, bits_per_channel=10)
    print("\nTable 2 (this work's rows) — measured on the simulator")
    print(format_table(
        ["channel", "type", "error rate", "bandwidth (Mbps)"],
        [
            (row.channel,
             f"{row.parallel}/{row.locality}/{row.directness}",
             row.error_rate, row.bandwidth_mbps)
            for row in rows
        ],
    ))
    by_name = {row.channel: row for row in rows}
    tpc = by_name["GPU TPC Channel"]
    multi_tpc = by_name["GPU TPC Channel (all TPCs)"]
    gpc = by_name["GPU GPC Channel"]
    multi_gpc = by_name["GPU GPC Channel (all GPCs)"]

    # All four are parallel/local/direct channels.
    assert all(
        (row.parallel, row.locality, row.directness)
        == ("Parallel", "Local", "Direct")
        for row in rows
    )
    # Bandwidth ordering: multi-TPC >> TPC > GPC; multi-GPC > GPC.
    assert multi_tpc.bandwidth_mbps > 10 * tpc.bandwidth_mbps
    assert tpc.bandwidth_mbps > gpc.bandwidth_mbps
    assert multi_gpc.bandwidth_mbps > gpc.bandwidth_mbps
    # Error: near zero for TPC/GPC/multi-TPC; small for multi-GPC (<3%-ish).
    assert tpc.error_rate <= 0.02
    assert gpc.error_rate <= 0.02
    assert multi_tpc.error_rate <= 0.06
    assert multi_gpc.error_rate <= 0.1

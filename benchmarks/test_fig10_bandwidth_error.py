"""Figure 10: covert-channel bandwidth and error rate vs iterations.

Four panels on the full Volta configuration: (a) single TPC channel,
(b) multi-TPC using all 40 TPCs, (c) single GPC channel, (d) multi-GPC
using all 6 GPCs.  The paper's shapes: bandwidth falls as the iteration
count grows; error falls toward zero; multi-channel variants multiply
bandwidth by the channel count; the TPC channel outperforms the GPC
channel; multi-TPC peaks more than an order of magnitude above a single
TPC channel (24 Mbps vs ~1 Mbps on Volta hardware).
"""

import pytest

from repro.analysis import fig10_panel, format_table
from repro.config import VOLTA_V100


def show(series):
    print(f"\nFigure 10 ({series.label}) — bandwidth / error vs iterations")
    print(format_table(
        ["iterations", "bit rate (kbps)", "error rate"], series.rows()
    ))


@pytest.mark.benchmark(group="fig10")
def test_fig10a_single_tpc(once):
    series = once(
        fig10_panel, VOLTA_V100, "tpc",
        iterations=(1, 2, 3, 4, 5), bits_per_channel=16,
    )
    show(series)
    rates = [p.bandwidth_kbps for p in series.points]
    errors = [p.error_rate for p in series.points]
    assert rates[0] > rates[-1]
    assert errors[-1] <= 0.05
    assert 100 < rates[-1] < 2000  # hundreds of kbps to ~Mbps band


@pytest.mark.benchmark(group="fig10")
def test_fig10b_multi_tpc(once):
    series = once(
        fig10_panel, VOLTA_V100, "multi-tpc",
        iterations=(1, 3, 5), bits_per_channel=8,
    )
    show(series)
    errors = [p.error_rate for p in series.points]
    rates = [p.bandwidth_kbps for p in series.points]
    assert errors[-1] <= 0.06          # negligible at 5 iterations
    assert errors[0] >= errors[-1]     # error falls with iterations
    assert rates[-1] > 5_000           # multi-Mbps with 40 channels


@pytest.mark.benchmark(group="fig10")
def test_fig10c_single_gpc(once):
    series = once(
        fig10_panel, VOLTA_V100, "gpc",
        iterations=(2, 4), bits_per_channel=12,
    )
    show(series)
    errors = [p.error_rate for p in series.points]
    rates = [p.bandwidth_kbps for p in series.points]
    assert errors[-1] <= 0.1
    assert rates[0] > rates[-1]
    assert 50 < rates[-1] < 1500


@pytest.mark.benchmark(group="fig10")
def test_fig10d_multi_gpc(once):
    series = once(
        fig10_panel, VOLTA_V100, "multi-gpc",
        iterations=(2, 4), bits_per_channel=8,
    )
    show(series)
    errors = [p.error_rate for p in series.points]
    rates = [p.bandwidth_kbps for p in series.points]
    assert errors[-1] <= 0.15
    assert rates[0] > rates[-1]
    # ~6 channels: aggregate above a single GPC channel's rate.
    assert rates[-1] > 500


@pytest.mark.benchmark(group="fig10")
def test_fig10_cross_panel_ordering(once):
    """The paper's headline ordering: multi-TPC >> multi-GPC > TPC > GPC."""

    def run_all():
        rates = {}
        for kind, bits in (
            ("tpc", 16), ("multi-tpc", 8), ("gpc", 12), ("multi-gpc", 8)
        ):
            panel = fig10_panel(
                VOLTA_V100, kind, iterations=(4,), bits_per_channel=bits
            )
            rates[kind] = panel.points[0].bandwidth_kbps
        return rates

    rates = once(run_all)
    print("\nFigure 10 — cross-panel bandwidth at 4 iterations (kbps)")
    print(format_table(["channel", "kbps"], sorted(rates.items())))
    assert rates["multi-tpc"] > rates["multi-gpc"]
    assert rates["multi-tpc"] > 10 * rates["tpc"]
    assert rates["tpc"] > rates["gpc"]
    assert rates["multi-gpc"] > rates["gpc"]

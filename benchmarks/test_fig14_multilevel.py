"""Figure 14: multi-level channel communication.

Paper result: transmitting the '0102030102030..' sequence with 0/25/50/
100% request densities produces four distinguishable receiver-latency
levels, enabling 2 bits per slot for ~1.6x more bandwidth at a higher
error rate.
"""

import random

import pytest

from repro.analysis import fig14_multilevel_trace, format_series, format_table
from repro.config import small_config
from repro.channel import MultiLevelTpcChannel, TpcCovertChannel


@pytest.mark.benchmark(group="fig14")
def test_fig14_multilevel_staircase(once):
    pattern, trace = once(fig14_multilevel_trace, small_config(), repeats=6)
    print("\nFigure 14 — receiver latency for the '010203..' sequence")
    print(format_series(
        list(range(1, 25)), [round(v) for v in trace[:24]],
        "bit sequence", "latency (cycles)",
    ))
    by_symbol = {}
    for symbol, value in zip(pattern, trace):
        by_symbol.setdefault(symbol, []).append(value)
    means = [sum(v) / len(v) for _, v in sorted(by_symbol.items())]
    print(format_table(
        ["symbol", "mean latency"], list(enumerate(means))
    ))
    # Four strictly increasing latency levels.
    assert len(means) == 4
    assert all(b > a for a, b in zip(means, means[1:]))


@pytest.mark.benchmark(group="fig14")
def test_fig14_bandwidth_gain(once):
    """The ~1.6x effective bandwidth increase of the 2-bit channel."""
    config = small_config()
    rng = random.Random(77)

    def run():
        multilevel = MultiLevelTpcChannel(config)
        multilevel.calibrate_levels()
        symbols = [rng.randrange(4) for _ in range(48)]
        multi = multilevel.transmit(symbols)

        binary = TpcCovertChannel(config, params=multilevel.params)
        binary.calibrate()
        bits = [rng.randint(0, 1) for _ in range(48)]
        base = binary.transmit(bits)
        return multi, base

    multi, base = once(run)
    gain = multi.bandwidth_mbps / base.bandwidth_mbps
    print(f"\nbinary   : {base.bandwidth_mbps:.3f} Mbps, "
          f"error {base.error_rate:.3f}")
    print(f"4-level  : {multi.bandwidth_mbps:.3f} Mbps, "
          f"error {multi.error_rate:.3f}")
    print(f"raw gain : {gain:.2f}x (paper: ~1.6x, at higher error)")
    assert gain == pytest.approx(2.0, rel=0.15)  # 2 bits/slot, same T
    assert multi.error_rate >= base.error_rate   # the paper's trade-off
    assert multi.error_rate <= 0.35

"""Figure 11: GPC-channel information leakage.

Paper result: the probe TPC's latency grows linearly with the memory
traffic of TPCs that share its GPC, but with a much smaller slope than
the TPC channel (the GPC bandwidth speedup dampens the effect); TPCs of
a different GPC leave it flat.
"""

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100
from repro.reveng import gpc_sharing_sweep, mux_sharing_sweep


@pytest.mark.benchmark(group="fig11")
def test_fig11_gpc_channel_leakage(once):
    config = VOLTA_V100.replace(timing_noise=0)
    sweep = once(
        gpc_sharing_sweep, config,
        fractions=(0.0, 0.24, 0.48, 0.72, 0.96),
        ops=5,
    )
    print("\nFigure 11 — probe TPC time vs other TPCs' traffic fraction")
    rows = [
        (
            f"{fraction:.2f}",
            sweep.series["same-gpc"][i],
            sweep.series["different-gpc"][i],
        )
        for i, fraction in enumerate(sweep.fractions)
    ]
    print(format_table(["fraction", "same GPC", "different GPC"], rows))
    same_slope = sweep.slope("same-gpc")
    diff_slope = sweep.slope("different-gpc")
    print(f"slope same-GPC: {same_slope:+.3f}; "
          f"different-GPC: {diff_slope:+.3f}")

    # Same-GPC senders leak; different-GPC senders do not.
    assert same_slope > 0.1
    assert abs(diff_slope) < 0.05

    # And the slope is smaller than the TPC channel's (Figure 8).
    tpc = mux_sharing_sweep(
        config, fractions=(0.0, 0.48, 0.96), ops=8
    )
    tpc_slope = tpc.slope(f"SM1")
    print(f"TPC-channel slope for comparison: {tpc_slope:+.3f}")
    assert same_slope < tpc_slope

"""Figure 5: read vs write contention on the TPC and GPC channels.

Paper result: on the TPC channel, write co-runners double execution time
while reads barely matter; on the GPC channel, writes are throttled at the
TPC stage (only ~15% loss with all 7 TPCs) while reads degrade from 4
active TPCs and reach ~2.1x with 7.
"""

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100
from repro.reveng import rw_contention_profile


@pytest.mark.benchmark(group="fig05")
def test_fig05_read_write_contention(once):
    profile = once(rw_contention_profile, VOLTA_V100, ops=8)

    print("\nFigure 5(a) — TPC channel (2 SMs co-located)")
    print(format_table(
        ["access", "normalized time"],
        [("write", profile.tpc["write"]), ("read", profile.tpc["read"])],
    ))
    print("\nFigure 5(b) — GPC channel vs number of activated TPCs")
    rows = [
        (n + 1, profile.gpc["write"][n], profile.gpc["read"][n])
        for n in range(len(profile.gpc["write"]))
    ]
    print(format_table(["active TPCs", "write", "read"], rows))

    # TPC channel: writes 2x, reads minimal.
    assert profile.tpc["write"] == pytest.approx(2.0, rel=0.15)
    assert profile.tpc["read"] < 1.3
    # GPC channel: writes stay under ~1.25x even at 7 TPCs.
    assert profile.gpc["write"][-1] < 1.25
    # GPC reads: minimal through 3 TPCs, degrading from 4, ~2x at 7.
    assert profile.gpc["read"][2] < 1.2
    assert profile.gpc["read"][3] > profile.gpc["read"][2]
    assert profile.gpc["read"][-1] == pytest.approx(2.1, rel=0.2)

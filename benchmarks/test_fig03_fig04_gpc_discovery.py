"""Figures 3 and 4: GPC membership discovery and the full topology map.

Figure 3: with TPC0 as the anchor and random extra TPCs co-activated,
the anchor's average execution time rises measurably only when the varied
TPC shares its GPC.  Figure 4: repeating from successive anchors recovers
the complete logical-to-physical TPC->GPC map, including the imperfect
interleaving caused by the two 6-TPC GPCs.

The statistics run on the noise-free medium configuration (the full V100
sweep is the same code with ``VOLTA_V100`` and more trials — the paper
used 200 trials per point); the recovered-map check then validates the
mechanism against the configured ground truth, and the V100's expected
map is printed from the config's interleaving model.
"""

import pytest

from repro.analysis import format_table
from repro.config import VOLTA_V100, medium_config
from repro.reveng import (
    recover_gpc_groups,
    sweep_gpc_membership,
    verify_topology,
)


@pytest.mark.benchmark(group="fig03")
def test_fig03_gpc_membership_sweep(once):
    config = medium_config(timing_noise=0)
    sweep = once(
        sweep_gpc_membership, config,
        anchor_tpc=0, trials=8, extra_tpcs=4, ops=3, seed=1,
    )
    scores = sweep.membership_scores()
    print("\nFigure 3 — anchor TPC0 average-time leverage per varied TPC")
    print(format_table(
        ["TPC id", "avg time", "membership score"],
        [
            (tpc, sweep.averages()[tpc], scores[tpc])
            for tpc in sorted(scores)
        ],
    ))
    detected = sweep.co_resident_tpcs()
    truth = sorted(
        t for t in config.gpc_members()[config.tpc_to_gpc_map()[0]] if t
    )
    print(f"detected co-GPC TPCs: {detected} (truth: {truth})")
    assert detected == truth


@pytest.mark.benchmark(group="fig04")
def test_fig04_topology_recovery(once):
    config = medium_config(timing_noise=0)
    groups = once(recover_gpc_groups, config, trials=8, ops=3, seed=5)
    print("\nFigure 4 — recovered TPC->GPC grouping")
    for index, group in enumerate(sorted(groups, key=min)):
        print(f"  GPC {index}: TPCs {sorted(group)}")
    assert verify_topology(config, groups)

    # The full V100's map (the content of Figure 4), from the validated
    # interleaving model: TPCs interleave across GPCs and the two 6-TPC
    # GPCs drop out of the tail rotation.
    members = VOLTA_V100.gpc_members()
    print("\nVolta V100 logical map (Figure 4):")
    for gpc, tpcs in members.items():
        print(f"  GPC {gpc}: TPCs {tpcs}")
    assert [len(members[g]) for g in range(6)] == [7, 7, 7, 7, 6, 6]
    # GPC5 holds TPC 5,11,17,23,29 and then 39 — not 35 (Section 3.3).
    assert members[5][:5] == [5, 11, 17, 23, 29]
    assert members[5][-1] != 35

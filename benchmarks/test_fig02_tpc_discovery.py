"""Figure 2: SM0's execution time when co-run with each other SM.

Paper result (Volta V100): a factor-of-2 slowdown appears only when the
co-runner is SM1 — the SM sharing SM0's TPC injection channel — and no
degradation for any other SM.
"""

import pytest

from repro.analysis import format_series
from repro.config import VOLTA_V100
from repro.reveng import sweep_tpc_pairing


@pytest.mark.benchmark(group="fig02")
def test_fig02_tpc_discovery(once):
    config = VOLTA_V100
    sweep = once(sweep_tpc_pairing, config, ops=8)
    normalized = sweep.normalized()
    xs = sorted(normalized)
    ys = [normalized[sm] for sm in xs]
    print("\nFigure 2 — SM0 slowdown vs co-running SM id")
    print(format_series(xs[:12], ys[:12], "SM id", "normalized time"))
    print(f"... ({len(xs)} SMs swept)")
    partners = sweep.partner_of_sm0()
    print(f"TPC sibling(s) of SM0: {partners}")

    # Shape assertions: only SM1 doubles SM0's time.
    assert partners == [1]
    assert normalized[1] == pytest.approx(2.0, rel=0.15)
    others = [normalized[sm] for sm in xs if sm != 1]
    assert max(others) < 1.3

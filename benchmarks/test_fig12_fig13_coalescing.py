"""Figures 12 and 13: memory coalescing and the covert channel.

Figure 12 is the concept: a single (coalesced) request only creates
observable contention if it happens to align with the other side, while
32 uncoalesced requests blanket the slot.  Figure 13 measures it: a
coalesced *sender* pushes the error rate past 50% (no channel), an
uncoalesced sender with a coalesced receiver still errs around ~10%, and
the fully uncoalesced configuration is near error-free.
"""

import pytest

from repro.analysis import format_table
from repro.config import small_config
from repro.channel import run_coalescing_study


@pytest.mark.benchmark(group="fig13")
def test_fig13_coalescing_error_matrix(once):
    study = once(run_coalescing_study, small_config(), payload_bits=64)
    print("\nFigure 13 — error rate per coalescing configuration")
    print(format_table(["configuration", "error rate"], study.rows()))

    rates = study.error_rates
    # A coalesced sender cannot establish the channel...
    assert rates[(True, True)] > 0.25
    assert rates[(True, False)] > 0.25
    # ...an uncoalesced sender works, best with an uncoalesced receiver.
    assert rates[(False, False)] <= 0.05
    assert rates[(False, False)] <= rates[(False, True)]
    # Ordering matches the paper's bars.
    assert rates[(False, False)] < rates[(True, True)]
    assert rates[(False, True)] < rates[(True, True)]
